//! The panic-surface audit.
//!
//! Counts the three panic-capable constructs — `.unwrap()`, `.expect(…)`,
//! and slice/array indexing `x[…]` — in every non-test library source
//! file and compares the per-file counts against the checked-in
//! `crates/xtask/panic-allowlist.toml`. The build fails when a file
//! appears that is not in the allowlist, when an allowlisted file
//! disappears or goes to zero, and when any recorded count drifts from
//! reality **in either direction** — shrinking the panic surface must
//! also be recorded, so the allowlist always states the exact current
//! surface and every new `unwrap` is a deliberate, reviewed decision.

use std::collections::BTreeMap;

use crate::lexer::{Token, TokenKind};

/// Per-file counts of panic-capable constructs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileCounts {
    /// `.unwrap()` call sites.
    pub unwrap: usize,
    /// `.expect(…)` call sites.
    pub expect: usize,
    /// Index expressions `x[…]` (slice, array, or map indexing).
    pub index: usize,
}

impl FileCounts {
    /// True when no panic-capable construct was counted.
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }
}

impl std::ops::AddAssign for FileCounts {
    fn add_assign(&mut self, rhs: Self) {
        self.unwrap += rhs.unwrap;
        self.expect += rhs.expect;
        self.index += rhs.index;
    }
}

impl std::fmt::Display for FileCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unwrap = {}, expect = {}, index = {}",
            self.unwrap, self.expect, self.index
        )
    }
}

/// Reserved words that can directly precede a `[` that is *not* an index
/// expression (patterns like `let [a, b] = …`, `for [x, y] in …`).
const KEYWORDS: [&str; 24] = [
    "as", "break", "const", "continue", "crate", "else", "enum", "fn", "for", "if", "impl", "in",
    "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "use", "where", "while",
];

/// Counts panic-capable constructs in a stripped, test-free token stream.
pub fn count(tokens: &[Token]) -> FileCounts {
    let mut counts = FileCounts::default();
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                let method_call = i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
                if method_call {
                    if t.text == "unwrap" {
                        counts.unwrap += 1;
                    } else {
                        counts.expect += 1;
                    }
                }
            }
            TokenKind::Punct if t.text == "[" && i > 0 => {
                let prev = &tokens[i - 1];
                let indexable = match prev.kind {
                    TokenKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
                    TokenKind::Punct => prev.text == ")" || prev.text == "]",
                    TokenKind::Number => false,
                };
                if indexable {
                    counts.index += 1;
                }
            }
            _ => {}
        }
    }
    counts
}

/// One audit finding (a divergence between reality and the allowlist).
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Workspace-relative path.
    pub file: String,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.file, self.message)
    }
}

/// Compares measured per-file counts against the allowlist. Files with
/// all-zero counts are expected to be absent from the allowlist.
pub fn compare(
    measured: &BTreeMap<String, FileCounts>,
    allowed: &BTreeMap<String, FileCounts>,
) -> Vec<Divergence> {
    let mut out = Vec::new();
    for (file, counts) in measured {
        match allowed.get(file) {
            None if counts.is_zero() => {}
            None => out.push(Divergence {
                file: file.clone(),
                message: format!(
                    "new panic surface ({counts}) not in the allowlist; if \
                     deliberate, run `cargo xtask lint --update-panic-allowlist`"
                ),
            }),
            Some(entry) if entry == counts => {}
            Some(entry) => out.push(Divergence {
                file: file.clone(),
                message: format!(
                    "panic surface drifted: allowlist records ({entry}) but \
                     the source has ({counts}); update the allowlist to match"
                ),
            }),
        }
    }
    for file in allowed.keys() {
        let gone = match measured.get(file) {
            None => true,
            Some(counts) => counts.is_zero(),
        };
        if gone {
            out.push(Divergence {
                file: file.clone(),
                message: "stale allowlist entry: file is gone or now \
                          panic-free; remove the entry"
                    .to_owned(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_cfg_test};

    fn counts(source: &str) -> FileCounts {
        let lexed = lex(source);
        count(&strip_cfg_test(&lexed.tokens))
    }

    #[test]
    fn counts_unwrap_and_expect_calls() {
        let c = counts("fn f() { a.unwrap(); b.expect(\"msg\"); c.unwrap_or(0); }");
        assert_eq!(c.unwrap, 1, "unwrap_or is not unwrap");
        assert_eq!(c.expect, 1);
    }

    #[test]
    fn counts_index_expressions_not_patterns_or_types() {
        let c = counts(
            "fn f(v: &[u8], m: &Map) -> u8 {\n\
               let [a, b] = [v[0], v[1]];\n\
               let t: [u8; 4] = make();\n\
               let x = vec![1, 2];\n\
               let y = calls()[2];\n\
               #[allow(dead_code)]\n\
               let z = m.field[3];\n\
               a + b\n\
             }",
        );
        // v[0], v[1], calls()[2], m.field[3] — not `let [a, b]`, not the
        // `[u8; 4]` type, not `vec![…]`, not the attribute brackets.
        assert_eq!(c.index, 4);
    }

    #[test]
    fn test_modules_and_doc_comments_do_not_count() {
        let c = counts(
            "/// Example: `x.unwrap()` and a doc test:\n\
             /// ```\n\
             /// thing().unwrap();\n\
             /// ```\n\
             fn f() {}\n\
             #[cfg(test)]\n\
             mod tests { fn t() { thing().unwrap(); arr[0]; } }",
        );
        assert!(c.is_zero());
    }

    #[test]
    fn compare_flags_drift_in_both_directions() {
        let mk = |u, e, x| FileCounts {
            unwrap: u,
            expect: e,
            index: x,
        };
        let measured: BTreeMap<String, FileCounts> = [
            ("a.rs".to_owned(), mk(1, 0, 0)), // drifted up
            ("b.rs".to_owned(), mk(0, 1, 2)), // matches
            ("c.rs".to_owned(), mk(0, 0, 0)), // clean, no entry needed
            ("d.rs".to_owned(), mk(0, 0, 1)), // new, unlisted
        ]
        .into();
        let allowed: BTreeMap<String, FileCounts> = [
            ("a.rs".to_owned(), mk(0, 0, 0)),
            ("b.rs".to_owned(), mk(0, 1, 2)),
            ("e.rs".to_owned(), mk(1, 0, 0)), // stale
        ]
        .into();
        let diverged = compare(&measured, &allowed);
        let files: Vec<&str> = diverged.iter().map(|d| d.file.as_str()).collect();
        assert_eq!(files, vec!["a.rs", "d.rs", "e.rs"]);
    }

    #[test]
    fn matching_surface_is_clean() {
        let measured: BTreeMap<String, FileCounts> = [(
            "a.rs".to_owned(),
            FileCounts {
                unwrap: 0,
                expect: 3,
                index: 7,
            },
        )]
        .into();
        assert!(compare(&measured, &measured.clone()).is_empty());
    }
}
