//! A recursive-descent token-tree parser over the lexer's token stream.
//!
//! Groups the flat [`Token`] stream into a forest of [`Node`]s: leaves
//! for idents/numbers/puncts, and [`Group`]s for the three bracket
//! pairs `()`, `[]`, `{}`. Angle brackets are *not* grouped (in Rust
//! they are ambiguous without type context), so `<` and `>` stay leaf
//! puncts and scope walking steps over generic-argument lists by
//! counting angle depth at the leaf level.
//!
//! On top of the forest, [`walk_fns`] visits every `fn` body together
//! with its item path (`module::Type::fn_name`), which is what the
//! lock-order rule keys its manifest on.

use crate::lexer::{Token, TokenKind};

/// One node of the token forest.
#[derive(Debug, Clone)]
pub enum Node {
    /// A single non-bracket token.
    Leaf(Token),
    /// A balanced `(...)`, `[...]`, or `{...}` group.
    Group(Group),
}

/// A balanced bracket group.
#[derive(Debug, Clone)]
pub struct Group {
    /// The opening delimiter: `(`, `[`, or `{`.
    pub delim: char,
    /// The opening-delimiter token (spans come from here).
    pub open: Token,
    /// The nodes between the delimiters.
    pub children: Vec<Node>,
}

impl Node {
    /// The leaf token, when this node is a leaf.
    pub fn leaf(&self) -> Option<&Token> {
        match self {
            Node::Leaf(t) => Some(t),
            Node::Group(_) => None,
        }
    }

    /// The group, when this node is one.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Node::Leaf(_) => None,
            Node::Group(g) => Some(g),
        }
    }

    /// True when this is the identifier `text`.
    pub fn is_ident(&self, text: &str) -> bool {
        self.leaf().is_some_and(|t| t.is_ident(text))
    }

    /// True when this is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.leaf().is_some_and(|t| t.is_punct(ch))
    }

    /// The source line this node starts on.
    pub fn line(&self) -> usize {
        match self {
            Node::Leaf(t) => t.line,
            Node::Group(g) => g.open.line,
        }
    }

    /// The source column this node starts at.
    pub fn col(&self) -> usize {
        match self {
            Node::Leaf(t) => t.col,
            Node::Group(g) => g.open.col,
        }
    }
}

fn closer_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Parses a token stream into a forest.
///
/// Tolerant of imbalance: a stray closer is dropped, and a group left
/// open at end of input is closed implicitly. This keeps the parser
/// total over any input the lexer produces.
pub fn parse_forest(tokens: &[Token]) -> Vec<Node> {
    // Each stack entry is a group under construction.
    let mut stack: Vec<Group> = Vec::new();
    let mut top: Vec<Node> = Vec::new();
    for token in tokens {
        let is_open = token.kind == TokenKind::Punct && "([{".contains(token.text.as_str());
        let is_close = token.kind == TokenKind::Punct && ")]}".contains(token.text.as_str());
        if is_open {
            stack.push(Group {
                delim: token.text.chars().next().unwrap_or('('),
                open: token.clone(),
                children: Vec::new(),
            });
        } else if is_close {
            // Pop only when the closer matches the innermost group;
            // otherwise drop the stray closer.
            let matches = stack
                .last()
                .is_some_and(|g| token.text.starts_with(closer_of(g.delim)));
            if matches {
                let done = stack.pop().unwrap_or_else(|| unreachable!());
                match stack.last_mut() {
                    Some(parent) => parent.children.push(Node::Group(done)),
                    None => top.push(Node::Group(done)),
                }
            }
        } else {
            let node = Node::Leaf(token.clone());
            match stack.last_mut() {
                Some(parent) => parent.children.push(node),
                None => top.push(node),
            }
        }
    }
    // Implicitly close anything left open.
    while let Some(done) = stack.pop() {
        match stack.last_mut() {
            Some(parent) => parent.children.push(Node::Group(done)),
            None => top.push(Node::Group(done)),
        }
    }
    top
}

/// A function body discovered by [`walk_fns`].
pub struct FnScope<'a> {
    /// `module::Type::fn_name` path of the function (no leading crate
    /// name; modules and impl self-types contribute segments).
    pub path: String,
    /// The `{...}` body group.
    pub body: &'a Group,
}

/// Visits every `fn` body in the forest, in source order, with its
/// item path. `mod name { ... }` and `impl [Trait for] Type { ... }`
/// contribute path segments; nested fns contribute their own.
pub fn walk_fns<'a>(forest: &'a [Node], visit: &mut dyn FnMut(&FnScope<'a>)) {
    walk_level(forest, "", visit);
}

fn walk_level<'a>(nodes: &'a [Node], prefix: &str, visit: &mut dyn FnMut(&FnScope<'a>)) {
    let mut i = 0;
    while i < nodes.len() {
        if nodes[i].is_ident("mod") {
            // `mod name { ... }` (a `mod name;` declaration has no body).
            let name = nodes.get(i + 1).and_then(Node::leaf);
            let body = nodes.get(i + 2).and_then(Node::group);
            if let (Some(name), Some(body)) = (name, body) {
                if body.delim == '{' {
                    let path = join(prefix, &name.text);
                    walk_level(&body.children, &path, visit);
                    i += 3;
                    continue;
                }
            }
            i += 1;
        } else if nodes[i].is_ident("impl") {
            if let Some((segment, body, next)) = parse_impl(nodes, i) {
                let path = join(prefix, &segment);
                walk_level(&body.children, &path, visit);
                i = next;
                continue;
            }
            i += 1;
        } else if nodes[i].is_ident("fn") {
            if let Some((name, body, next)) = parse_fn(nodes, i) {
                let path = join(prefix, &name);
                visit(&FnScope {
                    path: path.clone(),
                    body,
                });
                // Nested items (closures don't nest fns often, but
                // `fn` inside `fn` is legal).
                walk_level(&body.children, &path, visit);
                i = next;
                continue;
            }
            i += 1;
        } else if let Node::Group(g) = &nodes[i] {
            // Descend into other groups (e.g. statement blocks) so fns
            // inside them are still found.
            walk_level(&g.children, prefix, visit);
            i += 1;
        } else {
            i += 1;
        }
    }
}

fn join(prefix: &str, segment: &str) -> String {
    if prefix.is_empty() {
        segment.to_owned()
    } else {
        format!("{prefix}::{segment}")
    }
}

/// Parses `impl [<...>] [Trait for] Type [<...>] [where ...] { ... }`
/// starting at the `impl` keyword. Returns the self-type segment (the
/// last depth-0 path segment of the type after `for`, or of the whole
/// header for inherent impls), the body group, and the index one past
/// the body.
fn parse_impl(nodes: &[Node], start: usize) -> Option<(String, &Group, usize)> {
    let mut i = start + 1;
    let mut angle = 0isize;
    let mut segment: Option<String> = None;
    let mut in_where = false;
    while i < nodes.len() {
        let node = &nodes[i];
        if node.is_punct('<') {
            angle += 1;
        } else if is_closing_angle(nodes, i) {
            angle -= 1;
        } else if angle == 0 {
            if node.is_ident("for") {
                segment = None; // the self type follows
            } else if node.is_ident("where") {
                in_where = true; // bound idents are not the self type
            } else if let Some(leaf) = node.leaf() {
                if leaf.kind == TokenKind::Ident && !in_where {
                    segment = Some(leaf.text.clone());
                }
            } else if let Some(g) = node.group() {
                if g.delim == '{' {
                    return Some((segment.unwrap_or_else(|| "impl".to_owned()), g, i + 1));
                }
            }
        }
        i += 1;
    }
    None
}

/// Parses `fn name [<...>] (args) [-> Ret] [where ...] { body }` (or a
/// trailing `;` for trait-method signatures) starting at the `fn`
/// keyword. Returns the name, body group, and index one past the body.
fn parse_fn(nodes: &[Node], start: usize) -> Option<(String, &Group, usize)> {
    let name = nodes.get(start + 1)?.leaf()?;
    if name.kind != TokenKind::Ident {
        return None; // `fn(...)` pointer type, not an item
    }
    let mut i = start + 2;
    let mut angle = 0isize;
    while i < nodes.len() {
        let node = &nodes[i];
        if node.is_punct('<') {
            angle += 1;
        } else if is_closing_angle(nodes, i) {
            angle -= 1;
        } else if angle == 0 {
            if node.is_punct(';') {
                return None; // signature only (trait method / extern)
            }
            if let Some(g) = node.group() {
                if g.delim == '{' {
                    return Some((name.text.clone(), g, i + 1));
                }
            }
            // A nested `fn` keyword before we found the body means we
            // mis-parsed (shouldn't happen on valid code); bail out.
            if node.is_ident("fn") {
                return None;
            }
        }
        i += 1;
    }
    None
}

/// True when `nodes[i]` is a `>` that closes a generic-argument list:
/// a bare `>` not preceded by `-` or `=` (which would make it the tail
/// of a `->` or `=>` arrow).
fn is_closing_angle(nodes: &[Node], i: usize) -> bool {
    nodes[i].is_punct('>') && !(i > 0 && (nodes[i - 1].is_punct('-') || nodes[i - 1].is_punct('=')))
}

/// Depth-first visit of every leaf token in a forest, in source order.
pub fn for_each_leaf<'a>(nodes: &'a [Node], visit: &mut dyn FnMut(&'a Token)) {
    for node in nodes {
        match node {
            Node::Leaf(t) => visit(t),
            Node::Group(g) => for_each_leaf(&g.children, visit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn forest(source: &str) -> Vec<Node> {
        parse_forest(&lex(source).tokens)
    }

    fn fn_paths(source: &str) -> Vec<String> {
        let forest = forest(source);
        let mut paths = Vec::new();
        walk_fns(&forest, &mut |scope| paths.push(scope.path.clone()));
        paths
    }

    #[test]
    fn groups_nest_and_balance() {
        let nodes = forest("fn f(a: [u8; 4]) { g(1, (2)); }");
        // Top level: fn, f, (...), {...}
        assert_eq!(nodes.len(), 4);
        let body = nodes[3].group().expect("body group");
        assert_eq!(body.delim, '{');
        let call_args = body.children[1].group().expect("call args");
        assert_eq!(call_args.delim, '(');
        assert!(call_args.children.iter().any(|n| n.group().is_some()));
    }

    #[test]
    fn imbalance_is_tolerated() {
        // Stray closer dropped; unclosed group closed implicitly.
        let nodes = forest(") fn f( {");
        assert!(!nodes.is_empty());
        let nodes = forest("{ ( }");
        assert_eq!(nodes.len(), 1);
    }

    #[test]
    fn fn_paths_cover_mods_impls_and_nesting() {
        let source = "
            fn top() {}
            mod outer {
                pub struct Widget;
                impl Widget {
                    fn method(&self) { fn inner() {} inner(); }
                }
                impl Default for Widget {
                    fn default() -> Self { Widget }
                }
                mod deep { fn leaf() {} }
            }
        ";
        assert_eq!(
            fn_paths(source),
            vec![
                "top",
                "outer::Widget::method",
                "outer::Widget::method::inner",
                "outer::Widget::default",
                "outer::deep::leaf",
            ]
        );
    }

    #[test]
    fn generic_impls_and_fns_are_handled() {
        let source = "
            impl<T: Clone> Holder<T> {
                fn get<U>(&self, u: U) -> T where U: Copy { self.0.clone() }
            }
            impl<'a> From<&'a str> for Holder<String> {
                fn from(s: &'a str) -> Self { Holder(s.to_owned()) }
            }
        ";
        assert_eq!(fn_paths(source), vec!["Holder::get", "Holder::from"]);
    }

    #[test]
    fn fn_pointer_types_and_trait_signatures_are_skipped() {
        let source = "
            trait T { fn required(&self); }
            fn takes(f: fn(u32) -> u32) -> u32 { f(1) }
        ";
        assert_eq!(fn_paths(source), vec!["takes"]);
    }

    #[test]
    fn fns_inside_statement_blocks_are_found() {
        let source = "const X: () = { fn hidden() {} };";
        assert_eq!(fn_paths(source), vec!["hidden"]);
    }
}
