//! Workspace discovery and deterministic source-file enumeration.

use std::path::{Path, PathBuf};

/// Finds the workspace root by walking upward from `start` until a
/// `Cargo.toml` declaring `[workspace]` is found.
///
/// # Errors
///
/// Returns a message when no ancestor of `start` is a workspace root.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return Ok(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    Err(format!("no workspace root found above {}", start.display()))
}

/// All `.rs` files under `dir`, recursively, in a stable sorted order
/// (the lint's own output must be deterministic).
pub fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Workspace-relative path with forward slashes (stable across hosts).
pub fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace() {
        let cwd = std::env::current_dir().unwrap();
        let root = find_workspace_root(&cwd).unwrap();
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/xtask").is_dir());
    }

    #[test]
    fn sources_are_sorted_and_rs_only() {
        let cwd = std::env::current_dir().unwrap();
        let root = find_workspace_root(&cwd).unwrap();
        let files = rust_sources(&root.join("crates/xtask/src"));
        assert!(files.len() >= 5);
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
        assert!(files
            .iter()
            .all(|f| f.extension().is_some_and(|e| e == "rs")));
    }

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/ws");
        let rel = relative(root, Path::new("/ws/crates/a/src/lib.rs"));
        assert_eq!(rel, "crates/a/src/lib.rs");
    }
}
