//! Reading and writing `panic-allowlist.toml`.
//!
//! The file is deliberately restricted to one shape so it can be parsed
//! without a TOML dependency (xtask builds on a bare toolchain):
//!
//! ```toml
//! [files]
//! "crates/policy/src/clock.rs" = { unwrap = 0, expect = 5, index = 12 }
//! ```
//!
//! Comment lines (`#`) and blank lines are ignored; everything else must
//! match the pattern above exactly, and paths must be sorted (the writer
//! emits them sorted, so any hand edit that preserves order round-trips).

use std::collections::BTreeMap;

use crate::panic_audit::FileCounts;

/// Parses allowlist text into per-file counts.
///
/// # Errors
///
/// Returns a message naming the offending line on any shape violation.
pub fn parse(text: &str) -> Result<BTreeMap<String, FileCounts>, String> {
    let mut out = BTreeMap::new();
    let mut in_files = false;
    for (number, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[files]" {
            in_files = true;
            continue;
        }
        if !in_files {
            return Err(format!(
                "line {}: expected `[files]` before entries, got `{line}`",
                number + 1
            ));
        }
        let (path, counts) = parse_entry(line)
            .ok_or_else(|| format!("line {}: malformed allowlist entry `{line}`", number + 1))?;
        if out.insert(path.clone(), counts).is_some() {
            return Err(format!("line {}: duplicate entry for `{path}`", number + 1));
        }
    }
    Ok(out)
}

/// Parses one `"path" = { unwrap = N, expect = N, index = N }` line.
fn parse_entry(line: &str) -> Option<(String, FileCounts)> {
    let rest = line.strip_prefix('"')?;
    let (path, rest) = rest.split_once('"')?;
    let rest = rest.trim().strip_prefix('=')?.trim();
    let body = rest.strip_prefix('{')?.trim().strip_suffix('}')?.trim();
    let mut counts = FileCounts::default();
    let mut seen = [false; 3];
    for part in body.split(',') {
        let (key, value) = part.split_once('=')?;
        let value: usize = value.trim().parse().ok()?;
        let slot = match key.trim() {
            "unwrap" => {
                counts.unwrap = value;
                0
            }
            "expect" => {
                counts.expect = value;
                1
            }
            "index" => {
                counts.index = value;
                2
            }
            _ => return None,
        };
        if seen[slot] {
            return None;
        }
        seen[slot] = true;
    }
    seen.iter().all(|&s| s).then(|| (path.to_owned(), counts))
}

/// Renders per-file counts as allowlist text (sorted, zero-count files
/// omitted).
pub fn render(counts: &BTreeMap<String, FileCounts>) -> String {
    let mut out = String::from(
        "# Panic-surface allowlist, checked by `cargo xtask lint`.\n\
         #\n\
         # Every non-test library file with a panic-capable construct\n\
         # (`.unwrap()`, `.expect(…)`, or index expressions `x[…]`) is\n\
         # recorded here with its exact counts. The lint fails when a\n\
         # count drifts from reality in either direction, so changing the\n\
         # panic surface is always an explicit, reviewed edit. After a\n\
         # deliberate change, regenerate with:\n\
         #\n\
         #     cargo xtask lint --update-panic-allowlist\n\
         #\n\
         # Prefer `expect(\"invariant message\")` over `unwrap()`, and\n\
         # propagating `Result` over both; see DESIGN.md.\n\
         \n\
         [files]\n",
    );
    for (path, c) in counts {
        if !c.is_zero() {
            out.push_str(&format!("\"{path}\" = {{ {c} }}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let counts: BTreeMap<String, FileCounts> = [
            (
                "crates/a/src/lib.rs".to_owned(),
                FileCounts {
                    unwrap: 1,
                    expect: 2,
                    index: 3,
                },
            ),
            ("crates/b/src/lib.rs".to_owned(), FileCounts::default()),
        ]
        .into();
        let text = render(&counts);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.len(), 1, "zero-count files are omitted");
        assert_eq!(parsed["crates/a/src/lib.rs"].expect, 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(
            parse("[files]\n\"a.rs\" = { unwrap = 1 }").is_err(),
            "missing keys"
        );
        assert!(
            parse("\"a.rs\" = { unwrap = 1, expect = 0, index = 0 }").is_err(),
            "no header"
        );
        assert!(parse("[files]\n\"a.rs\" = { unwrap = x, expect = 0, index = 0 }").is_err());
        let dup = "[files]\n\
                   \"a.rs\" = { unwrap = 1, expect = 0, index = 0 }\n\
                   \"a.rs\" = { unwrap = 1, expect = 0, index = 0 }";
        assert!(parse(dup).is_err(), "duplicate entry");
    }

    #[test]
    fn ignores_comments_and_blanks() {
        let text = "# header\n\n[files]\n# entry comment\n\"a.rs\" = { unwrap = 4, expect = 5, index = 6 }\n";
        let parsed = parse(text).unwrap();
        assert_eq!(parsed["a.rs"].unwrap, 4);
        assert_eq!(parsed["a.rs"].index, 6);
    }
}
