//! Spanned diagnostics and the machine-readable lint report.
//!
//! Every rule finding is a [`Diagnostic`] carrying a full
//! `file:line:col` span, its rule id, and a [`Severity`]. The set of
//! rules is declared once in [`RULES`] — id, severity, annotation key,
//! and a one-line summary — so the human `--help`-style output, the
//! JSON report, and DESIGN.md §14 all describe the same table.
//!
//! `cargo xtask lint --json` serializes a [`Report`] with the stable
//! schema id `hybridmem-lint-v1`; CI checks the report against that
//! schema and fails when any `deny` diagnostic is present. The JSON is
//! hand-rolled (xtask stays zero-dependency) and deterministic:
//! diagnostics are sorted by `(file, line, col, rule)` and all keys are
//! emitted in a fixed order.

/// How a finding is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported in the JSON output but does not fail the lint.
    Warn,
    /// Fails `cargo xtask lint` (and the CI gate).
    Deny,
}

impl Severity {
    /// The lowercase name used in human output and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One lint finding with a full source span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file (forward slashes).
    pub file: String,
    /// 1-based line of the finding.
    pub line: usize,
    /// 1-based column (in characters) of the finding.
    pub col: usize,
    /// Rule identifier (the name `xtask:allow(...)` takes).
    pub rule: &'static str,
    /// Whether the finding fails the lint.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}] {}",
            self.file,
            self.line,
            self.col,
            self.severity.as_str(),
            self.rule,
            self.message
        )
    }
}

/// Sorts diagnostics into the canonical report order.
pub fn sort(diagnostics: &mut [Diagnostic]) {
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

/// Static description of one rule: the row of the rule table.
pub struct RuleInfo {
    /// Rule id (also the `xtask:allow(...)` key).
    pub id: &'static str,
    /// Severity every finding of this rule carries.
    pub severity: Severity,
    /// `true` when the allow annotation must carry a `why=` clause.
    pub requires_why: bool,
    /// One-line summary for reports and docs.
    pub summary: &'static str,
}

/// The full rule table. Order here is the order rules are documented
/// in; it does not affect diagnostic ordering (which is span-sorted).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "default_hasher",
        severity: Severity::Deny,
        requires_why: false,
        summary: "bare HashMap/HashSet in simulation crates (randomly keyed hasher)",
    },
    RuleInfo {
        id: "serialized_unordered",
        severity: Severity::Deny,
        requires_why: false,
        summary: "unordered hash collection in a #[derive(Serialize)] type",
    },
    RuleInfo {
        id: "timing",
        severity: Severity::Deny,
        requires_why: false,
        summary: "wall-clock read (Instant::now/SystemTime) in simulation crates",
    },
    RuleInfo {
        id: "rng",
        severity: Severity::Deny,
        requires_why: false,
        summary: "entropy-seeded randomness in simulation crates",
    },
    RuleInfo {
        id: "atomic-ordering",
        severity: Severity::Deny,
        requires_why: true,
        summary: "explicit atomic Ordering without a why= justification",
    },
    RuleInfo {
        id: "hot-path-lock",
        severity: Severity::Deny,
        requires_why: true,
        summary: "Mutex/RwLock use inside a hot-path module",
    },
    RuleInfo {
        id: "lock-order",
        severity: Severity::Deny,
        requires_why: false,
        summary: "nested lock acquisition not recorded in the lock-order manifest",
    },
    RuleInfo {
        id: "lock-order-cycle",
        severity: Severity::Deny,
        requires_why: false,
        summary: "contradictory edges (a before b and b before a) in the lock-order manifest",
    },
    RuleInfo {
        id: "lossy-cast",
        severity: Severity::Deny,
        requires_why: true,
        summary: "possibly-lossy `as` cast between numeric widths in model/accounting code",
    },
    RuleInfo {
        id: "float-eq",
        severity: Severity::Deny,
        requires_why: true,
        summary: "float == / != comparison in model/accounting code",
    },
    RuleInfo {
        id: "match-wildcard",
        severity: Severity::Deny,
        requires_why: true,
        summary: "`_` arm in a match over SimEvent/PolicyAction/DemotionCause",
    },
    RuleInfo {
        id: "panic-surface",
        severity: Severity::Deny,
        requires_why: false,
        summary: "per-file unwrap/expect/index counts drifted from panic-allowlist.toml",
    },
    RuleInfo {
        id: "atomic-ratchet",
        severity: Severity::Deny,
        requires_why: false,
        summary: "per-file atomic Ordering counts drifted from atomic-allowlist.toml",
    },
];

/// Looks a rule up by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// The complete result of one lint run.
pub struct Report {
    /// Every finding, span-sorted.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of source files scanned by any rule family.
    pub files_scanned: usize,
}

impl Report {
    /// Count of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Serializes the report as `hybridmem-lint-v1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"hybridmem-lint-v1\",\n  \"rules\": [\n");
        for (i, rule) in RULES.iter().enumerate() {
            out.push_str("    {");
            field(&mut out, "id", rule.id);
            out.push_str(", ");
            field(&mut out, "severity", rule.severity.as_str());
            out.push_str(", ");
            let annotation = if rule.requires_why {
                format!("xtask:allow({}, why=...)", rule.id)
            } else {
                format!("xtask:allow({})", rule.id)
            };
            field(&mut out, "annotation", &annotation);
            out.push_str(", ");
            field(&mut out, "summary", rule.summary);
            out.push('}');
            if i + 1 < RULES.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str("    {");
            field(&mut out, "file", &d.file);
            out.push_str(", ");
            out.push_str(&format!("\"line\": {}, \"col\": {}, ", d.line, d.col));
            field(&mut out, "rule", d.rule);
            out.push_str(", ");
            field(&mut out, "severity", d.severity.as_str());
            out.push_str(", ");
            field(&mut out, "message", &d.message);
            out.push('}');
            if i + 1 < self.diagnostics.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "  ],\n  \"counts\": {{\"deny\": {}, \"warn\": {}}},\n  \"files_scanned\": {}\n}}\n",
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            self.files_scanned
        ));
        out
    }
}

fn field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\": \"");
    escape_into(out, value);
    out.push('"');
}

/// Appends `value` JSON-escaped (quotes, backslashes, control chars).
fn escape_into(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32)); // xtask:allow(lossy-cast, why=char-to-u32 is always widening)
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: usize, col: usize, rule: &'static str) -> Diagnostic {
        Diagnostic {
            file: file.to_owned(),
            line,
            col,
            rule,
            severity: Severity::Deny,
            message: format!("finding in {file}"),
        }
    }

    #[test]
    fn display_includes_the_full_span() {
        let d = diag("crates/core/src/model.rs", 12, 9, "float-eq");
        assert_eq!(
            d.to_string(),
            "crates/core/src/model.rs:12:9: deny[float-eq] finding in crates/core/src/model.rs"
        );
    }

    #[test]
    fn sort_orders_by_file_then_span_then_rule() {
        let mut diags = vec![
            diag("b.rs", 1, 1, "timing"),
            diag("a.rs", 2, 5, "rng"),
            diag("a.rs", 2, 5, "float-eq"),
            diag("a.rs", 1, 9, "timing"),
        ];
        sort(&mut diags);
        let order: Vec<(&str, usize, usize, &str)> = diags
            .iter()
            .map(|d| (d.file.as_str(), d.line, d.col, d.rule))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs", 1, 9, "timing"),
                ("a.rs", 2, 5, "float-eq"),
                ("a.rs", 2, 5, "rng"),
                ("b.rs", 1, 1, "timing"),
            ]
        );
    }

    #[test]
    fn every_rule_id_is_unique_and_looked_up() {
        for rule in RULES {
            assert_eq!(
                RULES.iter().filter(|r| r.id == rule.id).count(),
                1,
                "duplicate rule id {}",
                rule.id
            );
            assert!(rule_info(rule.id).is_some());
        }
        assert!(rule_info("no-such-rule").is_none());
    }

    #[test]
    fn json_report_has_the_stable_shape() {
        let report = Report {
            diagnostics: vec![diag("a.rs", 3, 7, "atomic-ordering")],
            files_scanned: 42,
        };
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"hybridmem-lint-v1\""));
        assert!(json.contains("\"file\": \"a.rs\", \"line\": 3, \"col\": 7"));
        assert!(json.contains("\"counts\": {\"deny\": 1, \"warn\": 0}"));
        assert!(json.contains("\"files_scanned\": 42"));
        assert!(json.contains("\"annotation\": \"xtask:allow(atomic-ordering, why=...)\""));
    }

    #[test]
    fn json_strings_are_escaped() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                file: "a.rs".to_owned(),
                line: 1,
                col: 1,
                rule: "timing",
                severity: Severity::Deny,
                message: "quote \" backslash \\ newline \n tab \t".to_owned(),
            }],
            files_scanned: 1,
        };
        let json = report.to_json();
        assert!(json.contains("quote \\\" backslash \\\\ newline \\n tab \\t"));
    }
}
