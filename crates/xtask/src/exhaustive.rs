//! The exhaustiveness ratchet over the simulation's sentinel enums.
//!
//! `SimEvent`, `PolicyAction`, and `DemotionCause` are the enums every
//! telemetry consumer switches on. A `_` arm in a `match` over one of
//! them means a future variant — the sharded engine's new events, the
//! MDP model's new actions — is silently swallowed instead of breaking
//! the build. Rule `match-wildcard` denies bare `_` arms in any match
//! whose arm patterns name a sentinel enum; explicit multi-variant arms
//! (`A | B => {}`) express the same fall-through while still going
//! non-exhaustive when a variant is added.
//!
//! Detection is structural: the token forest is walked for `match`
//! keywords, the body group's children are split into arms at
//! top-level `=>` tokens, and the *patterns* (never the arm bodies,
//! which legitimately mention other enums) are searched for sentinel
//! names. A match over `(from, to)` tuples of `MemoryKind` is
//! therefore out of scope even when its arm bodies construct
//! `PolicyAction` values.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::Lexed;
use crate::tree::Node;

/// Enums whose matches must stay wildcard-free.
pub const SENTINELS: [&str; 3] = ["SimEvent", "PolicyAction", "DemotionCause"];

/// One parsed match arm: its pattern (top-level nodes before any
/// guard) and the `_` token when the pattern is a bare wildcard.
struct Arm<'a> {
    pattern: &'a [Node],
}

impl Arm<'_> {
    /// The pattern with a trailing `if <guard>` clause removed.
    fn pattern_without_guard(&self) -> &[Node] {
        let guard = self.pattern.iter().position(|n| n.is_ident("if"));
        &self.pattern[..guard.unwrap_or(self.pattern.len())]
    }

    /// True when the (unguarded) pattern is exactly `_`.
    fn is_wildcard(&self) -> bool {
        let p = self.pattern_without_guard();
        p.len() == 1 && p[0].is_ident("_")
    }

    /// True when the pattern names a sentinel enum, at any depth.
    fn mentions_sentinel(&self) -> bool {
        fn any_sentinel(nodes: &[Node]) -> bool {
            nodes.iter().any(|n| match n {
                Node::Leaf(t) => SENTINELS.contains(&t.text.as_str()),
                Node::Group(g) => any_sentinel(&g.children),
            })
        }
        any_sentinel(self.pattern)
    }
}

/// Rule `match-wildcard` over one file's token forest.
pub fn match_wildcard(file: &str, lexed: &Lexed, forest: &[Node], out: &mut Vec<Diagnostic>) {
    scan(file, lexed, forest, out);
}

fn scan(file: &str, lexed: &Lexed, nodes: &[Node], out: &mut Vec<Diagnostic>) {
    // Recurse first so nested matches (inside arm bodies, closures,
    // blocks) are found regardless of how this level parses.
    for node in nodes {
        if let Node::Group(g) = node {
            scan(file, lexed, &g.children, out);
        }
    }
    let mut i = 0;
    while i < nodes.len() {
        if !nodes[i].is_ident("match") {
            i += 1;
            continue;
        }
        // The scrutinee cannot contain an unparenthesized struct
        // literal, so the first `{` group at this level is the body.
        let Some(body) = nodes[i + 1..]
            .iter()
            .find_map(|n| n.group().filter(|g| g.delim == '{'))
        else {
            i += 1;
            continue;
        };
        let arms = parse_arms(&body.children);
        if arms.iter().any(Arm::mentions_sentinel) {
            for arm in &arms {
                if !arm.is_wildcard() {
                    continue;
                }
                let at = &arm.pattern[0];
                match lexed.allow_why(at.line(), "match-wildcard") {
                    Some(Some(_)) => {}
                    Some(None) => out.push(Diagnostic {
                        file: file.to_owned(),
                        line: at.line(),
                        col: at.col(),
                        rule: "match-wildcard",
                        severity: Severity::Deny,
                        message: "wildcard-arm annotation lacks a `why=` justification".to_owned(),
                    }),
                    None => out.push(Diagnostic {
                        file: file.to_owned(),
                        line: at.line(),
                        col: at.col(),
                        rule: "match-wildcard",
                        severity: Severity::Deny,
                        message: "`_` arm in a match over a sentinel enum \
                                  (SimEvent/PolicyAction/DemotionCause) swallows \
                                  future variants; list the remaining variants \
                                  explicitly"
                            .to_owned(),
                    }),
                }
            }
        }
        i += 1;
    }
}

/// Splits a match body's children into arms at top-level `=>` tokens.
fn parse_arms(nodes: &[Node]) -> Vec<Arm<'_>> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < nodes.len() {
        let start = i;
        // Pattern: everything up to the `=` `>` pair.
        while i + 1 < nodes.len() && !(nodes[i].is_punct('=') && nodes[i + 1].is_punct('>')) {
            i += 1;
        }
        if i + 1 >= nodes.len() {
            break; // no arrow: trailing tokens, not an arm
        }
        let pattern = &nodes[start..i];
        i += 2; // skip `=>`
                // Body: a brace group, or an expression running to the next
                // top-level comma. Nested `match` bodies are inside groups, so
                // their arrows are invisible at this level.
        if nodes
            .get(i)
            .is_some_and(|n| n.group().is_some_and(|g| g.delim == '{'))
        {
            i += 1;
        } else {
            while i < nodes.len() && !nodes[i].is_punct(',') {
                i += 1;
            }
        }
        if nodes.get(i).is_some_and(|n| n.is_punct(',')) {
            i += 1;
        }
        if !pattern.is_empty() {
            arms.push(Arm { pattern });
        }
    }
    arms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_cfg_test};
    use crate::tree::parse_forest;

    fn check(source: &str) -> Vec<Diagnostic> {
        let lexed = lex(source);
        let forest = parse_forest(&strip_cfg_test(&lexed.tokens));
        let mut out = Vec::new();
        match_wildcard("test.rs", &lexed, &forest, &mut out);
        out
    }

    #[test]
    fn wildcard_over_sentinel_fires() {
        let v = check(
            "fn f(a: &PolicyAction) {\n\
               match a {\n\
                 PolicyAction::Migrate { .. } => act(),\n\
                 _ => {}\n\
               }\n\
             }",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "match-wildcard");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn explicit_arms_are_clean() {
        assert!(check(
            "fn f(e: &SimEvent) {\n\
               match e {\n\
                 SimEvent::Served { .. } => a(),\n\
                 SimEvent::Fault { .. } | SimEvent::Action { .. } => b(),\n\
                 SimEvent::CounterProbe { .. } => c(),\n\
               }\n\
             }"
        )
        .is_empty());
    }

    #[test]
    fn wildcard_over_other_enums_is_fine() {
        assert!(check(
            "fn f(k: MemoryKind) -> u32 {\n\
               match k { MemoryKind::Dram => 1, _ => 2 }\n\
             }"
        )
        .is_empty());
    }

    #[test]
    fn sentinel_in_arm_body_does_not_make_the_match_sentinel() {
        // A `(from, to)` tuple match whose bodies construct
        // PolicyAction values: the inner wildcard is out of scope.
        assert!(check(
            "fn f(from: MemoryKind, to: MemoryKind) -> Option<PolicyAction> {\n\
               match (from, to) {\n\
                 (MemoryKind::Nvm, MemoryKind::Dram) => Some(PolicyAction::Migrate { from, to }),\n\
                 _ => None,\n\
               }\n\
             }"
        )
        .is_empty());
    }

    #[test]
    fn nested_match_over_sentinel_is_found() {
        let v = check(
            "fn f(e: &SimEvent) {\n\
               if ready() {\n\
                 match e { SimEvent::Served { .. } => a(), _ => b() }\n\
               }\n\
             }",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn guarded_wildcard_still_fires() {
        let v = check(
            "fn f(c: DemotionCause) {\n\
               match c { DemotionCause::Cold => a(), _ if hot() => b(), _ => c() }\n\
             }",
        );
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn justified_wildcard_is_clean_but_bare_annotation_fires() {
        assert!(check(
            "fn f(a: &PolicyAction) {\n\
               match a {\n\
                 PolicyAction::Migrate { .. } => act(),\n\
                 // xtask:allow(match-wildcard, why=bench-only summary, counts all alike)\n\
                 _ => {}\n\
               }\n\
             }"
        )
        .is_empty());
        let bare = check(
            "fn f(a: &PolicyAction) {\n\
               match a {\n\
                 PolicyAction::Migrate { .. } => act(),\n\
                 _ => {} // xtask:allow(match-wildcard)\n\
               }\n\
             }",
        );
        assert_eq!(bare.len(), 1);
        assert!(bare[0].message.contains("why="));
    }

    #[test]
    fn binding_patterns_are_not_wildcards() {
        assert!(check(
            "fn f(e: &SimEvent) {\n\
               match e { SimEvent::Served { .. } => a(), other => log(other) }\n\
             }"
        )
        .is_empty());
    }
}
