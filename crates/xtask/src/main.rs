//! `cargo xtask` — in-repo automation for the hybridmem workspace.
//!
//! The only subcommand today is `lint`, a source-level static-analysis
//! pass with two halves:
//!
//! * **Determinism rules** over the simulation crates (`types`, `trace`,
//!   `cachesim`, `device`, `policy`, `core`, `metrics`): no default-hasher
//!   `HashMap`/`HashSet`, no unordered collections in serialized types,
//!   no wall-clock or entropy reads outside `xtask:allow(...)`-annotated
//!   sites. See [`rules`] for the rationale; PR 1's serial ≡ parallel
//!   byte-identity guarantee depends on these staying true.
//! * **Panic-surface audit** over all non-test library code: per-file
//!   `.unwrap()` / `.expect(…)` / index-expression counts must exactly
//!   match `crates/xtask/panic-allowlist.toml` (see [`panic_audit`]).
//!
//! Run `cargo xtask lint` locally or in CI; run
//! `cargo xtask lint --update-panic-allowlist` after a deliberate change
//! to the panic surface.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

mod allowlist;
mod lexer;
mod panic_audit;
mod rules;
mod scan;

use panic_audit::FileCounts;
use rules::Violation;

/// Path of the allowlist, relative to the workspace root.
const ALLOWLIST_PATH: &str = "crates/xtask/panic-allowlist.toml";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut update_allowlist = false;
    let mut command = None;
    for arg in &args {
        match arg.as_str() {
            "--update-panic-allowlist" => update_allowlist = true,
            "lint" if command.is_none() => command = Some("lint"),
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if command != Some("lint") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    match run(update_allowlist) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("xtask: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: cargo xtask lint [--update-panic-allowlist]

Checks (see DESIGN.md, \"Static analysis & enforced invariants\"):
  determinism     no default-hasher maps, no unordered serialized
                  collections, no wall-clock/entropy reads in the
                  simulation crates (annotate legitimate sites with
                  `// xtask:allow(rule)`)
  panic surface   per-file unwrap/expect/index counts must match
                  crates/xtask/panic-allowlist.toml exactly";

/// Runs the lint against the enclosing workspace. Returns `Ok(true)`
/// when everything is clean.
fn run(update_allowlist: bool) -> Result<bool, String> {
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = scan::find_workspace_root(&cwd)?;

    let violations = determinism_violations(&root)?;
    for v in &violations {
        eprintln!("{v}");
    }
    println!(
        "determinism: {} source file(s) in {} crate(s), {} violation(s)",
        rules::SIM_CRATES
            .iter()
            .map(|c| scan::rust_sources(&root.join("crates").join(c).join("src")).len())
            .sum::<usize>(),
        rules::SIM_CRATES.len(),
        violations.len()
    );

    let measured = measure_panic_surface(&root)?;
    if update_allowlist {
        let text = allowlist::render(&measured);
        std::fs::write(root.join(ALLOWLIST_PATH), text)
            .map_err(|e| format!("writing {ALLOWLIST_PATH}: {e}"))?;
        println!("panic surface: rewrote {ALLOWLIST_PATH}");
    }
    let allowed = load_allowlist(&root)?;
    let divergences = panic_audit::compare(&measured, &allowed);
    for d in &divergences {
        eprintln!("{d}");
    }
    let mut totals = FileCounts::default();
    for counts in measured.values() {
        totals += *counts;
    }
    println!(
        "panic surface: {} file(s) audited, {} allowlisted ({totals}), {} divergence(s)",
        measured.len(),
        allowed.len(),
        divergences.len()
    );

    Ok(violations.is_empty() && divergences.is_empty())
}

/// Runs the determinism rules over every non-test source file of the
/// simulation crates.
fn determinism_violations(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    for crate_name in rules::SIM_CRATES {
        let src = root.join("crates").join(crate_name).join("src");
        if !src.is_dir() {
            return Err(format!(
                "missing simulation crate source dir {}",
                src.display()
            ));
        }
        for file in scan::rust_sources(&src) {
            let source = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            let lexed = lexer::lex(&source);
            let tokens = lexer::strip_cfg_test(&lexed.tokens);
            violations.extend(rules::determinism_violations(
                &scan::relative(root, &file),
                &lexed,
                &tokens,
            ));
        }
    }
    Ok(violations)
}

/// Measures the panic surface of all non-test library code: every
/// crate's `src/` tree (excluding `src/bin/` regenerator binaries and
/// xtask itself) plus the root facade crate.
fn measure_panic_surface(root: &Path) -> Result<BTreeMap<String, FileCounts>, String> {
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
        .flatten()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for crate_dir in entries {
        let is_xtask = crate_dir.file_name().is_some_and(|n| n == "xtask");
        if crate_dir.is_dir() && !is_xtask {
            roots.push(crate_dir.join("src"));
        }
    }

    let mut measured = BTreeMap::new();
    for src in roots {
        for file in scan::rust_sources(&src) {
            let rel = scan::relative(root, &file);
            if rel.split('/').any(|part| part == "bin") {
                continue; // regenerator binaries are harnesses, not library code
            }
            let source = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            let lexed = lexer::lex(&source);
            let tokens = lexer::strip_cfg_test(&lexed.tokens);
            measured.insert(rel, panic_audit::count(&tokens));
        }
    }
    Ok(measured)
}

/// Loads and parses the checked-in allowlist.
fn load_allowlist(root: &Path) -> Result<BTreeMap<String, FileCounts>, String> {
    let path = root.join(ALLOWLIST_PATH);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("reading {ALLOWLIST_PATH}: {e} (run `cargo xtask lint --update-panic-allowlist` to seed it)"))?;
    allowlist::parse(&text).map_err(|e| format!("{ALLOWLIST_PATH}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> std::path::PathBuf {
        let cwd = std::env::current_dir().unwrap();
        scan::find_workspace_root(&cwd).unwrap()
    }

    fn check_fixture(name: &str) -> Vec<Violation> {
        let path = workspace_root().join("crates/xtask/fixtures").join(name);
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()));
        let lexed = lexer::lex(&source);
        let tokens = lexer::strip_cfg_test(&lexed.tokens);
        rules::determinism_violations(name, &lexed, &tokens)
    }

    #[test]
    fn each_rule_fixture_fires_exactly_once() {
        for rule in ["default_hasher", "serialized_unordered", "timing", "rng"] {
            let violations = check_fixture(&format!("{rule}.rs"));
            assert_eq!(
                violations.len(),
                1,
                "{rule}.rs should yield exactly one violation, got {violations:?}"
            );
            assert_eq!(violations[0].rule, rule, "{violations:?}");
        }
    }

    #[test]
    fn allowlist_annotation_fixture_is_clean() {
        let violations = check_fixture("allowed_sites.rs");
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn panic_fixture_counts_are_exact() {
        let path = workspace_root().join("crates/xtask/fixtures/panic_surface.rs");
        let source = std::fs::read_to_string(path).unwrap();
        let lexed = lexer::lex(&source);
        let counts = panic_audit::count(&lexer::strip_cfg_test(&lexed.tokens));
        assert_eq!(
            counts,
            FileCounts {
                unwrap: 1,
                expect: 2,
                index: 3
            },
            "fixture documents one unwrap, two expects, three index sites"
        );
    }

    #[test]
    fn span_profiler_timing_sites_are_individually_allowed() {
        // The span profiler in `crates/metrics/src/span.rs` is the one
        // deliberate wall-clock consumer inside the simulation crates.
        // Each of its `Instant::now` sites must carry its own
        // `xtask:allow(timing)` annotation — a module- or file-level
        // waiver does not exist, so a new unannotated clock read in the
        // profiler (or anywhere else in `metrics`) still fails the lint.
        let path = workspace_root().join("crates/metrics/src/span.rs");
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let lexed = lexer::lex(&source);
        let tokens = lexer::strip_cfg_test(&lexed.tokens);
        let now_lines: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|&(i, t)| {
                t.is_ident("Instant")
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
                    && tokens.get(i + 3).is_some_and(|n| n.is_ident("now"))
            })
            .map(|(_, t)| t.line)
            .collect();
        assert!(
            now_lines.len() >= 3,
            "the profiler reads the clock at its epoch, at span start, and \
             at span end; found only {} `Instant::now` site(s)",
            now_lines.len()
        );
        for line in &now_lines {
            assert!(
                lexed.allows(*line, "timing"),
                "crates/metrics/src/span.rs:{line}: `Instant::now` without \
                 an `xtask:allow(timing)` annotation"
            );
        }
        let violations =
            rules::determinism_violations("crates/metrics/src/span.rs", &lexed, &tokens);
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn real_workspace_has_no_determinism_violations() {
        let violations = determinism_violations(&workspace_root()).unwrap();
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn real_workspace_panic_surface_matches_allowlist() {
        let root = workspace_root();
        let measured = measure_panic_surface(&root).unwrap();
        let allowed = load_allowlist(&root).unwrap();
        let divergences = panic_audit::compare(&measured, &allowed);
        assert!(divergences.is_empty(), "{divergences:#?}");
    }

    #[test]
    fn allowlist_is_smaller_than_the_audited_surface() {
        // ISSUE acceptance: strictly fewer allowlist entries than the
        // ~175 unwrap() sites counted workspace-wide (tests included)
        // when the issue was filed — i.e. the allowlist only records
        // deliberate non-test sites, not the long tail of test code.
        let allowed = load_allowlist(&workspace_root()).unwrap();
        assert!(
            allowed.len() < 175,
            "allowlist has {} entries",
            allowed.len()
        );
        let unwraps: usize = allowed.values().map(|c| c.unwrap).sum();
        assert_eq!(unwraps, 0, "non-test library code is unwrap-free");
    }
}
