//! `cargo xtask` — in-repo automation for the hybridmem workspace.
//!
//! The only subcommand is `lint`, a zero-dependency structural
//! static-analysis pass (see DESIGN.md §14 for the full rule table):
//!
//! * **Determinism rules** over the simulation crates (`types`,
//!   `trace`, `cachesim`, `device`, `policy`, `core`, `metrics`) and
//!   the byte-stable analytics engine (`analyze`): no default-hasher
//!   maps, no unordered serialized collections, no wall-clock or
//!   entropy reads (see [`rules`]).
//! * **Concurrency safety** ahead of the sharded engine: every
//!   non-`SeqCst` atomic `Ordering` needs a `why=` justification,
//!   locks in hot-path modules are denied without one, and nested
//!   lock acquisitions are ratcheted in a lock-order manifest with a
//!   cycle check (see [`concurrency`]).
//! * **Numeric determinism** in `core::model`, `core::report`, and
//!   `metrics`: no lossy `as` casts to integer types, no float
//!   `==`/`!=` (see [`numeric`]).
//! * **Exhaustiveness ratchet**: no `_` arms in matches over
//!   `SimEvent`/`PolicyAction`/`DemotionCause` (see [`exhaustive`]).
//! * **Ratchet files**: per-file panic counts, atomic-ordering
//!   counts, and the lock-order manifest must exactly match the
//!   checked-in TOMLs, drift failing in both directions (see
//!   [`ratchet`] and [`panic_audit`]).
//!
//! Run `cargo xtask lint` locally or in CI; `cargo xtask lint --json`
//! emits the `hybridmem-lint-v1` report; `cargo xtask lint
//! --update-allowlists` regenerates all three ratchet files after a
//! deliberate change.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::process::ExitCode;

mod allowlist;
mod concurrency;
mod diag;
mod exhaustive;
mod lexer;
mod numeric;
mod panic_audit;
mod ratchet;
mod rules;
mod scan;
mod tree;

use concurrency::OrderingCounts;
use diag::{Diagnostic, Report, Severity};
use panic_audit::FileCounts;

/// Ratchet file paths, relative to the workspace root.
const PANIC_ALLOWLIST_PATH: &str = "crates/xtask/panic-allowlist.toml";
const ATOMIC_ALLOWLIST_PATH: &str = "crates/xtask/atomic-allowlist.toml";
const LOCK_ORDER_PATH: &str = "crates/xtask/lock-order.toml";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut update_allowlists = false;
    let mut json = false;
    let mut command = None;
    for arg in &args {
        match arg.as_str() {
            // `--update-panic-allowlist` predates the unified flow and
            // is kept as an alias.
            "--update-allowlists" | "--update-panic-allowlist" => update_allowlists = true,
            "--json" => json = true,
            "lint" if command.is_none() => command = Some("lint"),
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if command != Some("lint") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    match run(update_allowlists, json) {
        Ok(clean) => {
            if clean || json {
                // `--json` always exits 0: delivering the report is the
                // job; CI gates on its `counts.deny` field.
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("xtask: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: cargo xtask lint [--json] [--update-allowlists]

Checks (see DESIGN.md \u{a7}14 for the full rule table):
  determinism      no default-hasher maps, no unordered serialized
                   collections, no wall-clock/entropy reads in the
                   simulation crates
  concurrency      atomic Ordering sites justified and ratcheted,
                   hot-path modules lock-free, lock-order manifest
                   current and cycle-free
  numeric          no lossy `as` casts to integers and no float ==/!=
                   in core::model, core::report, metrics
  exhaustiveness   no `_` arms over SimEvent/PolicyAction/DemotionCause
  panic surface    per-file unwrap/expect/index counts ratcheted

Annotate legitimate sites with `// xtask:allow(rule)` (concurrency and
numeric rules require `why=...`). `--json` writes the
hybridmem-lint-v1 report to stdout and always exits 0;
`--update-allowlists` regenerates all three ratchet TOMLs.";

/// Everything measured in one pass over the workspace sources.
struct Gathered {
    /// Per-site rule findings (ratchet drift is added later).
    diagnostics: Vec<Diagnostic>,
    /// Per-file atomic ordering counts (simulation crates).
    atomic: BTreeMap<String, OrderingCounts>,
    /// Lock-order edges keyed `file::fn_path` (simulation crates).
    lock_edges: BTreeMap<String, Vec<String>>,
    /// Per-file panic counts (all library code).
    panic: BTreeMap<String, FileCounts>,
    /// Distinct source files scanned by any rule family.
    files_scanned: usize,
}

/// Runs the lint against the enclosing workspace. Returns `Ok(true)`
/// when everything is clean.
fn run(update_allowlists: bool, json: bool) -> Result<bool, String> {
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = scan::find_workspace_root(&cwd)?;
    let mut gathered = gather(&root)?;

    if update_allowlists {
        write_ratchets(&root, &gathered)?;
        if !json {
            println!(
                "ratchets: rewrote {PANIC_ALLOWLIST_PATH}, {ATOMIC_ALLOWLIST_PATH}, \
                 {LOCK_ORDER_PATH}"
            );
        }
    }

    let allowed_panic = load_panic_allowlist(&root)?;
    for d in panic_audit::compare(&gathered.panic, &allowed_panic) {
        gathered.diagnostics.push(Diagnostic {
            file: d.file,
            line: 1,
            col: 1,
            rule: "panic-surface",
            severity: Severity::Deny,
            message: d.message,
        });
    }
    let allowed_atomic = load_atomic_allowlist(&root)?;
    ratchet::compare_atomic(&gathered.atomic, &allowed_atomic, &mut gathered.diagnostics);
    let manifest = load_lock_order(&root)?;
    ratchet::compare_lock_order(&gathered.lock_edges, &manifest, &mut gathered.diagnostics);

    diag::sort(&mut gathered.diagnostics);
    // The JSON report's `rules` table must describe every rule that can
    // fire — a diagnostic with an unregistered id is an engine bug.
    for d in &gathered.diagnostics {
        debug_assert!(
            diag::rule_info(d.rule).is_some(),
            "diagnostic carries unregistered rule id {}",
            d.rule
        );
    }
    let report = Report {
        diagnostics: gathered.diagnostics,
        files_scanned: gathered.files_scanned,
    };
    if json {
        print!("{}", report.to_json());
        return Ok(report.count(Severity::Deny) == 0);
    }
    for d in &report.diagnostics {
        eprintln!("{d}");
    }
    println!(
        "lint: {} file(s) scanned, {} deny / {} warn finding(s)",
        report.files_scanned,
        report.count(Severity::Deny),
        report.count(Severity::Warn)
    );
    Ok(report.count(Severity::Deny) == 0)
}

/// Runs every per-file rule family over the workspace sources.
fn gather(root: &Path) -> Result<Gathered, String> {
    let mut out = Gathered {
        diagnostics: Vec::new(),
        atomic: BTreeMap::new(),
        lock_edges: BTreeMap::new(),
        panic: BTreeMap::new(),
        files_scanned: 0,
    };
    let mut scanned = BTreeSet::new();

    // Simulation crates: determinism, concurrency, numeric, and
    // exhaustiveness rules.
    for crate_name in rules::SIM_CRATES {
        let src = root.join("crates").join(crate_name).join("src");
        if !src.is_dir() {
            return Err(format!(
                "missing simulation crate source dir {}",
                src.display()
            ));
        }
        for file in scan::rust_sources(&src) {
            let rel = scan::relative(root, &file);
            let source = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            let (atomic, edges) = check_file(&rel, &source, &mut out.diagnostics);
            if !atomic.is_zero() {
                out.atomic.insert(rel.clone(), atomic);
            }
            out.lock_edges.extend(edges);
            scanned.insert(rel);
        }
    }

    // All library code: the panic-surface audit.
    out.panic = measure_panic_surface(root)?;
    scanned.extend(out.panic.keys().cloned());
    out.files_scanned = scanned.len();
    Ok(out)
}

/// Runs every per-file rule on one source file (identified by its
/// workspace-relative path, which decides scope membership). Returns
/// the file's atomic-ordering counts and lock-order edges.
fn check_file(
    rel: &str,
    source: &str,
    out: &mut Vec<Diagnostic>,
) -> (OrderingCounts, BTreeMap<String, Vec<String>>) {
    let lexed = lexer::lex(source);
    let tokens = lexer::strip_cfg_test(&lexed.tokens);
    let forest = tree::parse_forest(&tokens);
    out.extend(rules::determinism_violations(rel, &lexed, &tokens));
    let atomic = concurrency::atomic_ordering(rel, &lexed, &tokens, out);
    concurrency::hot_path_locks(rel, &lexed, &tokens, out);
    numeric::numeric_violations(rel, &lexed, &tokens, out);
    exhaustive::match_wildcard(rel, &lexed, &forest, out);
    let edges = concurrency::lock_order_edges(rel, &lexed, &tokens, &forest);
    (atomic, edges)
}

/// Measures the panic surface of all non-test library code: every
/// crate's `src/` tree (excluding `src/bin/` regenerator binaries and
/// xtask itself) plus the root facade crate.
fn measure_panic_surface(root: &Path) -> Result<BTreeMap<String, FileCounts>, String> {
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
        .flatten()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for crate_dir in entries {
        let is_xtask = crate_dir.file_name().is_some_and(|n| n == "xtask");
        if crate_dir.is_dir() && !is_xtask {
            roots.push(crate_dir.join("src"));
        }
    }

    let mut measured = BTreeMap::new();
    for src in roots {
        for file in scan::rust_sources(&src) {
            let rel = scan::relative(root, &file);
            if rel.split('/').any(|part| part == "bin") {
                continue; // regenerator binaries are harnesses, not library code
            }
            let source = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            let lexed = lexer::lex(&source);
            let tokens = lexer::strip_cfg_test(&lexed.tokens);
            measured.insert(rel, panic_audit::count(&tokens));
        }
    }
    Ok(measured)
}

/// Rewrites all three ratchet files from the measured state.
fn write_ratchets(root: &Path, gathered: &Gathered) -> Result<(), String> {
    let writes = [
        (PANIC_ALLOWLIST_PATH, allowlist::render(&gathered.panic)),
        (
            ATOMIC_ALLOWLIST_PATH,
            ratchet::render_atomic(&gathered.atomic),
        ),
        (
            LOCK_ORDER_PATH,
            ratchet::render_lock_order(&gathered.lock_edges),
        ),
    ];
    for (path, text) in writes {
        std::fs::write(root.join(path), text).map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(())
}

/// Loads and parses the checked-in panic allowlist.
fn load_panic_allowlist(root: &Path) -> Result<BTreeMap<String, FileCounts>, String> {
    let text = read_ratchet(root, PANIC_ALLOWLIST_PATH)?;
    allowlist::parse(&text).map_err(|e| format!("{PANIC_ALLOWLIST_PATH}: {e}"))
}

/// Loads and parses the checked-in atomic-ordering allowlist.
fn load_atomic_allowlist(root: &Path) -> Result<BTreeMap<String, OrderingCounts>, String> {
    let text = read_ratchet(root, ATOMIC_ALLOWLIST_PATH)?;
    ratchet::parse_atomic(&text).map_err(|e| format!("{ATOMIC_ALLOWLIST_PATH}: {e}"))
}

/// Loads and parses the checked-in lock-order manifest.
fn load_lock_order(root: &Path) -> Result<BTreeMap<String, Vec<String>>, String> {
    let text = read_ratchet(root, LOCK_ORDER_PATH)?;
    ratchet::parse_lock_order(&text).map_err(|e| format!("{LOCK_ORDER_PATH}: {e}"))
}

fn read_ratchet(root: &Path, path: &str) -> Result<String, String> {
    std::fs::read_to_string(root.join(path)).map_err(|e| {
        format!("reading {path}: {e} (run `cargo xtask lint --update-allowlists` to seed it)")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> std::path::PathBuf {
        let cwd = std::env::current_dir().unwrap();
        scan::find_workspace_root(&cwd).unwrap()
    }

    fn read_fixture(name: &str) -> String {
        let path = workspace_root().join("crates/xtask/fixtures").join(name);
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()))
    }

    /// Runs every per-file rule over a fixture, under a path label that
    /// decides which scoped rules apply.
    fn check_fixture_as(name: &str, label: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_file(label, &read_fixture(name), &mut out);
        out
    }

    /// Labels placing a fixture in every rule's scope at once is
    /// impossible (numeric wants `metrics`, hot-path wants `policy`),
    /// so each fixture names the scope it needs.
    const FIXTURES: [(&str, &str, &str); 9] = [
        (
            "default_hasher",
            "default_hasher.rs",
            "crates/core/src/f.rs",
        ),
        (
            "serialized_unordered",
            "serialized_unordered.rs",
            "crates/core/src/f.rs",
        ),
        ("timing", "timing.rs", "crates/core/src/f.rs"),
        ("rng", "rng.rs", "crates/core/src/f.rs"),
        (
            "atomic-ordering",
            "atomic_ordering.rs",
            "crates/core/src/f.rs",
        ),
        (
            "hot-path-lock",
            "hot_path_lock.rs",
            "crates/policy/src/f.rs",
        ),
        ("lossy-cast", "lossy_cast.rs", "crates/metrics/src/f.rs"),
        ("float-eq", "float_eq.rs", "crates/metrics/src/f.rs"),
        (
            "match-wildcard",
            "match_wildcard.rs",
            "crates/core/src/f.rs",
        ),
    ];

    #[test]
    fn each_rule_fixture_fires_exactly_once() {
        for (rule, fixture, label) in FIXTURES {
            let diagnostics = check_fixture_as(fixture, label);
            assert_eq!(
                diagnostics.len(),
                1,
                "{fixture} should yield exactly one finding, got {diagnostics:?}"
            );
            assert_eq!(diagnostics[0].rule, rule, "{diagnostics:?}");
            assert!(diagnostics[0].line > 0 && diagnostics[0].col > 0);
        }
    }

    #[test]
    fn lock_order_fixture_yields_exactly_one_edge() {
        let source = read_fixture("lock_order.rs");
        let mut sink = Vec::new();
        let (_, edges) = check_file("crates/core/src/f.rs", &source, &mut sink);
        assert_eq!(edges.len(), 1, "{edges:?}");
        let (key, list) = edges.iter().next().unwrap();
        assert_eq!(key, "crates/core/src/f.rs::Pair::both");
        assert_eq!(list, &vec!["first -> second".to_owned()]);
        // Unrecorded, the edge is exactly one lock-order diagnostic.
        let mut out = Vec::new();
        ratchet::compare_lock_order(&edges, &BTreeMap::new(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lock-order");
    }

    #[test]
    fn allowlist_annotation_fixtures_are_clean() {
        // Legacy determinism annotations.
        let diagnostics = check_fixture_as("allowed_sites.rs", "crates/core/src/f.rs");
        assert!(diagnostics.is_empty(), "{diagnostics:?}");
        // Structural-rule annotations, once per applicable scope.
        for label in ["crates/policy/src/f.rs", "crates/metrics/src/f.rs"] {
            let diagnostics = check_fixture_as("allowed_structural.rs", label);
            assert!(diagnostics.is_empty(), "under {label}: {diagnostics:?}");
        }
    }

    #[test]
    fn panic_fixture_counts_are_exact() {
        let source = read_fixture("panic_surface.rs");
        let lexed = lexer::lex(&source);
        let counts = panic_audit::count(&lexer::strip_cfg_test(&lexed.tokens));
        assert_eq!(
            counts,
            FileCounts {
                unwrap: 1,
                expect: 2,
                index: 3
            },
            "fixture documents one unwrap, two expects, three index sites"
        );
    }

    #[test]
    fn fixture_diagnostics_round_trip_through_the_json_report() {
        let mut diagnostics = Vec::new();
        for (_, fixture, label) in FIXTURES {
            diagnostics.extend(check_fixture_as(fixture, label));
        }
        diag::sort(&mut diagnostics);
        let report = Report {
            diagnostics,
            files_scanned: FIXTURES.len(),
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"hybridmem-lint-v1\""));
        assert!(json.contains(&format!(
            "\"counts\": {{\"deny\": {}, \"warn\": 0}}",
            FIXTURES.len()
        )));
        // Every diagnostic row carries the full span and a known rule id.
        for d in &report.diagnostics {
            assert!(diag::rule_info(d.rule).is_some(), "unknown rule {}", d.rule);
            assert!(json.contains(&format!(
                "\"file\": \"{}\", \"line\": {}, \"col\": {}",
                d.file, d.line, d.col
            )));
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "walks the whole workspace tree")]
    fn span_profiler_timing_sites_are_individually_allowed() {
        // The span profiler in `crates/metrics/src/span.rs` is the one
        // deliberate wall-clock consumer inside the simulation crates.
        // Each of its `Instant::now` sites must carry its own
        // `xtask:allow(timing)` annotation — a module- or file-level
        // waiver does not exist, so a new unannotated clock read in the
        // profiler (or anywhere else in `metrics`) still fails the lint.
        let path = workspace_root().join("crates/metrics/src/span.rs");
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let lexed = lexer::lex(&source);
        let tokens = lexer::strip_cfg_test(&lexed.tokens);
        let now_lines: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|&(i, t)| {
                t.is_ident("Instant")
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
                    && tokens.get(i + 3).is_some_and(|n| n.is_ident("now"))
            })
            .map(|(_, t)| t.line)
            .collect();
        assert!(
            now_lines.len() >= 3,
            "the profiler reads the clock at its epoch, at span start, and \
             at span end; found only {} `Instant::now` site(s)",
            now_lines.len()
        );
        for line in &now_lines {
            assert!(
                lexed.allows(*line, "timing"),
                "crates/metrics/src/span.rs:{line}: `Instant::now` without \
                 an `xtask:allow(timing)` annotation"
            );
        }
        let violations =
            rules::determinism_violations("crates/metrics/src/span.rs", &lexed, &tokens);
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    #[cfg_attr(miri, ignore = "walks the whole workspace tree")]
    fn real_workspace_is_lint_clean() {
        // The workspace-clean regression test for every rule family:
        // per-site findings are empty and all three ratchets match the
        // measured state exactly.
        let root = workspace_root();
        let gathered = gather(&root).unwrap();
        assert!(
            gathered.diagnostics.is_empty(),
            "{:#?}",
            gathered.diagnostics
        );

        let mut drift = Vec::new();
        let allowed_atomic = load_atomic_allowlist(&root).unwrap();
        ratchet::compare_atomic(&gathered.atomic, &allowed_atomic, &mut drift);
        let manifest = load_lock_order(&root).unwrap();
        ratchet::compare_lock_order(&gathered.lock_edges, &manifest, &mut drift);
        let allowed_panic = load_panic_allowlist(&root).unwrap();
        drift.extend(
            panic_audit::compare(&gathered.panic, &allowed_panic)
                .into_iter()
                .map(|d| Diagnostic {
                    file: d.file,
                    line: 1,
                    col: 1,
                    rule: "panic-surface",
                    severity: Severity::Deny,
                    message: d.message,
                }),
        );
        assert!(drift.is_empty(), "{drift:#?}");
    }

    #[test]
    #[cfg_attr(miri, ignore = "walks the whole workspace tree")]
    fn workspace_atomic_surface_is_annotated_and_ratcheted() {
        // The trace cache and the parallel scheduler are the two known
        // Relaxed-ordering consumers; the ratchet must reflect them.
        let root = workspace_root();
        let gathered = gather(&root).unwrap();
        let relaxed: usize = gathered.atomic.values().map(|c| c.relaxed).sum();
        assert!(
            relaxed >= 20,
            "expected the trace-cache and scheduler counters, found {relaxed}"
        );
        assert!(gathered
            .atomic
            .contains_key("crates/core/src/trace_cache.rs"));
    }

    #[test]
    #[cfg_attr(miri, ignore = "walks the whole workspace tree")]
    fn allowlist_is_smaller_than_the_audited_surface() {
        // ISSUE acceptance: strictly fewer allowlist entries than the
        // ~175 unwrap() sites counted workspace-wide (tests included)
        // when the issue was filed — i.e. the allowlist only records
        // deliberate non-test sites, not the long tail of test code.
        let allowed = load_panic_allowlist(&workspace_root()).unwrap();
        assert!(
            allowed.len() < 175,
            "allowlist has {} entries",
            allowed.len()
        );
        let unwraps: usize = allowed.values().map(|c| c.unwrap).sum();
        assert_eq!(unwraps, 0, "non-test library code is unwrap-free");
    }
}
