//! The determinism rule set.
//!
//! PR 1 made serial and parallel evaluation runs byte-identical; these
//! rules keep that invariant machine-checked. They run over the stripped
//! token stream of every non-test source file in the simulation crates
//! (see [`SIM_CRATES`]) and reject the known nondeterminism hazards:
//!
//! * `default_hasher` — bare `HashMap`/`HashSet`. The default SipHash
//!   hasher is randomly keyed per process, so iteration order varies run
//!   to run. Simulation crates must use the deterministic
//!   `FxHashMap`/`FxHashSet` aliases from `hybridmem-types` (or a
//!   `BTreeMap`/`BTreeSet` where order matters).
//! * `serialized_unordered` — a hash map/set field inside a
//!   `#[derive(Serialize)]` type. Serde serializes maps in iteration
//!   order, so such a field makes the serialized report depend on
//!   insertion history (or, with the default hasher, on the process).
//!   Use `BTreeMap`/`BTreeSet` for serialized collections.
//! * `timing` — `Instant::now` / `SystemTime`: wall-clock reads feeding
//!   simulation state would make results timing-dependent.
//! * `rng` — `thread_rng` / `from_entropy` / `rand::random` / `OsRng`:
//!   entropy-seeded randomness. Simulation randomness must flow from an
//!   explicit seed (`SeedableRng::seed_from_u64`).
//!
//! A legitimate site opts out with a `// xtask:allow(rule)` comment on
//! the same line or the line above (e.g. the wall-clock throughput
//! timers in `crates/core/src/experiments.rs`).

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Lexed, Token, TokenKind};

/// Crates whose sources must be deterministic: everything that runs
/// inside a simulation, plus the analytics engine whose reports CI
/// diffs byte-for-byte. The CLI and bench harnesses measure wall-clock
/// time on purpose and are exempt.
pub const SIM_CRATES: [&str; 8] = [
    "types", "trace", "cachesim", "device", "policy", "core", "metrics", "analyze",
];

/// Names of the unordered hash collections (std and the in-repo Fx
/// aliases) that must not appear in serialized types.
const UNORDERED: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Runs every determinism rule over one file's stripped token stream.
///
/// `tokens` must already have `#[cfg(test)]` items removed; `lexed`
/// provides the annotation table of the same file.
pub fn determinism_violations(file: &str, lexed: &Lexed, tokens: &[Token]) -> Vec<Diagnostic> {
    let mut violations = Vec::new();
    default_hasher(file, lexed, tokens, &mut violations);
    serialized_unordered(file, lexed, tokens, &mut violations);
    timing_and_rng(file, lexed, tokens, &mut violations);
    violations
}

fn push_unless_allowed(
    out: &mut Vec<Diagnostic>,
    lexed: &Lexed,
    file: &str,
    at: &Token,
    rule: &'static str,
    message: String,
) {
    if !lexed.allows(at.line, rule) {
        out.push(Diagnostic {
            file: file.to_owned(),
            line: at.line,
            col: at.col,
            rule,
            severity: Severity::Deny,
            message,
        });
    }
}

/// Rule `default_hasher`: any bare `HashMap`/`HashSet` identifier.
fn default_hasher(file: &str, lexed: &Lexed, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for t in tokens {
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            push_unless_allowed(
                out,
                lexed,
                file,
                t,
                "default_hasher",
                format!(
                    "bare `{}` (randomly keyed default hasher); use \
                     `Fx{}` from hybridmem-types, or a BTree collection",
                    t.text, t.text
                ),
            );
        }
    }
}

/// Rule `serialized_unordered`: a hash collection in the body of a type
/// that derives `Serialize`.
fn serialized_unordered(file: &str, lexed: &Lexed, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let mut i = 0;
    while i < tokens.len() {
        let Some(after_attr) = serialize_derive_end(tokens, i) else {
            i += 1;
            continue;
        };
        let mut j = after_attr;
        // Skip further attributes stacked between the derive and the item.
        while j < tokens.len() && tokens[j].is_punct('#') {
            j = skip_balanced(tokens, j + 1, '[', ']');
        }
        // Find the item body: the first top-level brace or paren group
        // after the `struct`/`enum` keyword.
        while j < tokens.len()
            && !(tokens[j].is_punct('{') || tokens[j].is_punct('(') || tokens[j].is_punct(';'))
        {
            j += 1;
        }
        if j < tokens.len() && !tokens[j].is_punct(';') {
            let (open, close) = if tokens[j].is_punct('{') {
                ('{', '}')
            } else {
                ('(', ')')
            };
            let end = skip_balanced(tokens, j, open, close);
            for t in &tokens[j..end.min(tokens.len())] {
                if UNORDERED.iter().any(|name| t.is_ident(name)) {
                    push_unless_allowed(
                        out,
                        lexed,
                        file,
                        t,
                        "serialized_unordered",
                        format!(
                            "`{}` field in a `#[derive(Serialize)]` type \
                             serializes in unordered iteration order; use a \
                             BTree collection for serialized fields",
                            t.text
                        ),
                    );
                }
            }
            i = end;
        } else {
            i = j + 1;
        }
    }
}

/// If `tokens[i..]` starts a `#[derive(...)]` attribute whose list names
/// `Serialize`, returns the index one past the attribute's closing `]`.
fn serialize_derive_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !(tokens.get(i)?.is_punct('#')
        && tokens.get(i + 1)?.is_punct('[')
        && tokens.get(i + 2)?.is_ident("derive")
        && tokens.get(i + 3)?.is_punct('('))
    {
        return None;
    }
    let end = skip_balanced(tokens, i + 1, '[', ']');
    tokens[i + 4..end.min(tokens.len())]
        .iter()
        .any(|t| t.is_ident("Serialize"))
        .then_some(end)
}

/// Rules `timing` and `rng`: wall-clock and entropy sources.
fn timing_and_rng(file: &str, lexed: &Lexed, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let timing = match t.text.as_str() {
            "Instant" if path_call(tokens, i, "now") => Some("`Instant::now()`"),
            "SystemTime" => Some("`SystemTime`"),
            _ => None,
        };
        if let Some(what) = timing {
            push_unless_allowed(
                out,
                lexed,
                file,
                t,
                "timing",
                format!("{what} reads the wall clock inside a simulation crate"),
            );
            continue;
        }
        let rng = match t.text.as_str() {
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => Some(t.text.as_str()),
            "rand" if path_call(tokens, i, "random") => Some("rand::random"),
            _ => None,
        };
        if let Some(what) = rng {
            push_unless_allowed(
                out,
                lexed,
                file,
                t,
                "rng",
                format!(
                    "`{what}` draws entropy-seeded randomness; derive all \
                     simulation randomness from an explicit seed"
                ),
            );
        }
    }
}

/// True when `tokens[i]` is followed by `::segment`.
fn path_call(tokens: &[Token], i: usize, segment: &str) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.is_ident(segment))
}

/// Skips a balanced `open`…`close` group; `i` must be at or before the
/// opening token. Returns the index one past the matching closer.
fn skip_balanced(tokens: &[Token], mut i: usize, open: char, close: char) -> usize {
    while i < tokens.len() && !tokens[i].is_punct(open) {
        i += 1;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct(open) {
            depth += 1;
        } else if tokens[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_cfg_test};

    fn check(source: &str) -> Vec<Diagnostic> {
        let lexed = lex(source);
        let tokens = strip_cfg_test(&lexed.tokens);
        determinism_violations("test.rs", &lexed, &tokens)
    }

    #[test]
    fn bare_hashmap_fires_default_hasher() {
        let v = check("fn f() -> usize { std::collections::HashMap::<u32, u32>::new().len() }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "default_hasher");
    }

    #[test]
    fn fx_map_is_fine_outside_serialized_types() {
        assert!(check("fn f() { let m: FxHashMap<u32, u32> = FxHashMap::default(); }").is_empty());
    }

    #[test]
    fn serialized_fx_map_fires() {
        let v = check(
            "#[derive(Debug, Serialize, Deserialize)]\n\
             pub struct Report { pub per_page: FxHashMap<u64, u64> }",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "serialized_unordered");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn serialized_btreemap_is_fine() {
        assert!(check(
            "#[derive(Serialize)]\n\
             pub struct Report { pub per_page: BTreeMap<u64, u64> }"
        )
        .is_empty());
    }

    #[test]
    fn unserialized_struct_with_fx_map_is_fine() {
        assert!(check("#[derive(Debug, Clone)]\nstruct S { m: FxHashMap<u64, u64> }").is_empty());
    }

    #[test]
    fn instant_now_fires_timing() {
        let v = check("fn f() { let t = Instant::now(); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "timing");
    }

    #[test]
    fn instant_import_alone_is_fine() {
        assert!(check("use std::time::Instant;").is_empty());
    }

    #[test]
    fn thread_rng_fires_rng() {
        let v = check("fn f() { let r = rand::thread_rng(); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "rng");
    }

    #[test]
    fn seeded_rng_is_fine() {
        assert!(check("fn f() { let r = StdRng::seed_from_u64(42); }").is_empty());
    }

    #[test]
    fn annotation_excuses_the_site() {
        assert!(check("fn f() { let t = Instant::now(); } // xtask:allow(timing)").is_empty());
        assert!(check("// xtask:allow(timing)\nfn f() { let t = Instant::now(); }").is_empty());
        let wrong_rule = check("fn f() { let t = Instant::now(); } // xtask:allow(rng)");
        assert_eq!(wrong_rule.len(), 1);
    }

    #[test]
    fn hazards_in_test_modules_are_ignored() {
        let source = "#[cfg(test)]\nmod tests {\n  fn f() { let m = HashMap::new(); }\n}";
        assert!(check(source).is_empty());
    }

    #[test]
    fn mentions_in_comments_and_strings_are_ignored() {
        assert!(check("// a HashMap here\nfn f() -> &'static str { \"SystemTime\" }").is_empty());
    }
}
