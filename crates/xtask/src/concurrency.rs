//! Concurrency-safety rules for the upcoming sharded engine.
//!
//! Three rules guard the workspace ahead of ROADMAP item 1 (the
//! lock-free sharded simulation engine):
//!
//! * `atomic-ordering` — every explicit non-`SeqCst` atomic ordering
//!   (`Ordering::Relaxed`/`Acquire`/`Release`/`AcqRel`) must carry an
//!   `// xtask:allow(atomic-ordering, why=...)` justification naming
//!   the synchronization argument. `SeqCst` is the conservative default
//!   and needs no annotation. All sites (including `SeqCst`) are also
//!   counted into `crates/xtask/atomic-allowlist.toml`, a ratchet that
//!   fails on drift in either direction (see [`crate::ratchet`]).
//! * `hot-path-lock` — constructing or acquiring a `Mutex`/`RwLock`
//!   inside a hot-path module (`core::simulator`, `core::trace_cache`,
//!   `policy/*`) is denied without a justification. The simulator's
//!   inner loop must stay lock-free; the trace cache's single
//!   materialization lock is the annotated exception.
//! * `lock-order` — nested/sequential lock acquisitions inside one
//!   function are extracted as ordered edges (`first -> second`) into
//!   `crates/xtask/lock-order.toml`. The manifest is checked for drift
//!   in both directions and for contradictory edges (a cycle check),
//!   so a future deadlock-prone acquisition order fails the lint
//!   before it fails a run.

use std::collections::BTreeMap;

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Lexed, Token, TokenKind};
use crate::tree::{self, Node};

/// The explicit atomic orderings (`std::sync::atomic::Ordering`
/// variants). `cmp::Ordering` variants never collide with these names.
pub const ATOMIC_MODES: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Per-file counts of explicit atomic-ordering sites, one slot per
/// mode, ratcheted by `atomic-allowlist.toml`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrderingCounts {
    /// `Ordering::Relaxed` sites.
    pub relaxed: usize,
    /// `Ordering::Acquire` sites.
    pub acquire: usize,
    /// `Ordering::Release` sites.
    pub release: usize,
    /// `Ordering::AcqRel` sites.
    pub acqrel: usize,
    /// `Ordering::SeqCst` sites.
    pub seqcst: usize,
}

impl OrderingCounts {
    /// True when the file has no explicit ordering site.
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    fn bump(&mut self, mode: &str) {
        match mode {
            "Relaxed" => self.relaxed += 1,
            "Acquire" => self.acquire += 1,
            "Release" => self.release += 1,
            "AcqRel" => self.acqrel += 1,
            _ => self.seqcst += 1,
        }
    }
}

impl std::fmt::Display for OrderingCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "relaxed = {}, acquire = {}, release = {}, acqrel = {}, seqcst = {}",
            self.relaxed, self.acquire, self.release, self.acqrel, self.seqcst
        )
    }
}

/// Rule `atomic-ordering`: finds `Ordering::<mode>` sites, demands a
/// `why=` justification for every non-`SeqCst` mode, and returns the
/// per-mode counts for the ratchet.
pub fn atomic_ordering(
    file: &str,
    lexed: &Lexed,
    tokens: &[Token],
    out: &mut Vec<Diagnostic>,
) -> OrderingCounts {
    let mut counts = OrderingCounts::default();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("Ordering") {
            continue;
        }
        let mode = tokens
            .get(i + 1)
            .filter(|n| n.is_punct(':'))
            .and_then(|_| tokens.get(i + 2))
            .filter(|n| n.is_punct(':'))
            .and_then(|_| tokens.get(i + 3))
            .filter(|n| n.kind == TokenKind::Ident && ATOMIC_MODES.contains(&n.text.as_str()));
        let Some(mode) = mode else { continue };
        counts.bump(&mode.text);
        if mode.text == "SeqCst" {
            continue; // the conservative default needs no justification
        }
        match lexed.allow_why(t.line, "atomic-ordering") {
            Some(Some(_)) => {}
            Some(None) => out.push(diag(
                file,
                t,
                "atomic-ordering",
                format!(
                    "`Ordering::{}` annotation lacks a `why=` justification; \
                     state the synchronization argument: \
                     `// xtask:allow(atomic-ordering, why=...)`",
                    mode.text
                ),
            )),
            None => out.push(diag(
                file,
                t,
                "atomic-ordering",
                format!(
                    "explicit `Ordering::{}` without a justification; add \
                     `// xtask:allow(atomic-ordering, why=...)` explaining \
                     why this ordering is sufficient",
                    mode.text
                ),
            )),
        }
    }
    counts
}

/// True for modules whose inner loops must stay lock-free.
pub fn is_hot_path(file: &str) -> bool {
    file == "crates/core/src/simulator.rs"
        || file == "crates/core/src/trace_cache.rs"
        || file.starts_with("crates/policy/src/")
}

/// One lock acquisition or construction site.
struct LockSite<'a> {
    /// Receiver identifier (`inner` for `self.inner.lock()`), or the
    /// type name for `Mutex::new(...)` constructions.
    name: String,
    /// The method/type token (span source).
    at: &'a Token,
    /// True for `Mutex::new`/`RwLock::new` rather than an acquisition.
    construction: bool,
}

/// Finds every lock construction and acquisition in a flat token
/// stream. `.lock()` counts when the file mentions `Mutex`/`RwLock` at
/// all; `.read()`/`.write()` only when the file mentions `RwLock`
/// (otherwise they are almost certainly `io::Read`/`io::Write` calls).
fn lock_sites<'a>(tokens: &'a [Token]) -> Vec<LockSite<'a>> {
    let has_mutex = tokens.iter().any(|t| t.is_ident("Mutex"));
    let has_rwlock = tokens.iter().any(|t| t.is_ident("RwLock"));
    let mut sites = Vec::new();
    if !(has_mutex || has_rwlock) {
        return sites;
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `Mutex::new(` / `RwLock::new(` constructions.
        if (t.text == "Mutex" || t.text == "RwLock")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|n| n.is_ident("new"))
        {
            sites.push(LockSite {
                name: t.text.clone(),
                at: t,
                construction: true,
            });
            continue;
        }
        // `.lock()` / `.read()` / `.write()` acquisitions.
        let is_acquire = match t.text.as_str() {
            "lock" => true,
            "read" | "write" => has_rwlock,
            _ => false,
        };
        if is_acquire
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            // An empty argument list: `.read(buf)` is io, `.read()` is a lock.
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(')'))
        {
            sites.push(LockSite {
                name: receiver_name(tokens, i - 1),
                at: t,
                construction: false,
            });
        }
    }
    sites
}

/// Names the receiver of a method call whose `.` is at `dot`: the
/// nearest preceding identifier, stepping back over one call/index
/// group (`make_lock().lock()` names `make_lock`).
fn receiver_name(tokens: &[Token], dot: usize) -> String {
    let mut j = dot;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.is_punct(')') || t.is_punct(']') {
            // Step back over the balanced group.
            let close = if t.is_punct(')') { ')' } else { ']' };
            let open = if close == ')' { '(' } else { '[' };
            let mut depth = 0usize;
            loop {
                if tokens[j].is_punct(close) {
                    depth += 1;
                } else if tokens[j].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            continue;
        }
        if t.kind == TokenKind::Ident && t.text != "self" {
            return t.text.clone();
        }
        if !(t.is_punct('.') || t.is_ident("self")) {
            break;
        }
    }
    "<expr>".to_owned()
}

/// Rule `hot-path-lock`: every lock construction/acquisition in a
/// hot-path module must carry `xtask:allow(hot-path-lock, why=...)`.
pub fn hot_path_locks(file: &str, lexed: &Lexed, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    if !is_hot_path(file) {
        return;
    }
    for site in lock_sites(tokens) {
        let what = if site.construction {
            format!("`{}::new` constructs a lock", site.name)
        } else {
            format!("`.{}()` on `{}` acquires a lock", site.at.text, site.name)
        };
        match lexed.allow_why(site.at.line, "hot-path-lock") {
            Some(Some(_)) => {}
            Some(None) => out.push(diag(
                file,
                site.at,
                "hot-path-lock",
                format!(
                    "{what} in a hot-path module; the annotation lacks a \
                     `why=` justification"
                ),
            )),
            None => out.push(diag(
                file,
                site.at,
                "hot-path-lock",
                format!(
                    "{what} in a hot-path module; keep the inner loop \
                     lock-free or add `// xtask:allow(hot-path-lock, why=...)`"
                ),
            )),
        }
    }
}

/// Extracts the lock-order edges of one file: for every function that
/// acquires two or more distinct locks, the ordered pairs of adjacent
/// distinct acquisitions (`first -> second`), keyed by
/// `file::fn_path`. An `xtask:allow(lock-order)` annotation on the
/// later acquisition suppresses that edge.
pub fn lock_order_edges(
    file: &str,
    lexed: &Lexed,
    tokens: &[Token],
    forest: &[Node],
) -> BTreeMap<String, Vec<String>> {
    // Byte offset -> site, so the tree walk can look sites up in order.
    let sites: BTreeMap<usize, (String, usize)> = lock_sites(tokens)
        .into_iter()
        .filter(|s| !s.construction)
        .map(|s| (s.at.byte, (s.name, s.at.line)))
        .collect();
    let mut out = BTreeMap::new();
    if sites.is_empty() {
        return out;
    }
    tree::walk_fns(forest, &mut |scope| {
        let mut acquired: Vec<(String, usize)> = Vec::new();
        tree::for_each_leaf(&scope.body.children, &mut |leaf| {
            if let Some((name, line)) = sites.get(&leaf.byte) {
                if acquired.last().map(|(n, _)| n.as_str()) != Some(name.as_str()) {
                    acquired.push((name.clone(), *line));
                }
            }
        });
        let mut edges: Vec<String> = acquired
            .windows(2)
            .filter(|w| w[0].0 != w[1].0 && !lexed.allows(w[1].1, "lock-order"))
            .map(|w| format!("{} -> {}", w[0].0, w[1].0))
            .collect();
        edges.sort();
        edges.dedup();
        if !edges.is_empty() {
            out.insert(format!("{file}::{}", scope.path), edges);
        }
    });
    out
}

fn diag(file: &str, at: &Token, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: file.to_owned(),
        line: at.line,
        col: at.col,
        rule,
        severity: Severity::Deny,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_cfg_test};
    use crate::tree::parse_forest;

    fn atomics(source: &str) -> (Vec<Diagnostic>, OrderingCounts) {
        let lexed = lex(source);
        let tokens = strip_cfg_test(&lexed.tokens);
        let mut out = Vec::new();
        let counts = atomic_ordering("test.rs", &lexed, &tokens, &mut out);
        (out, counts)
    }

    #[test]
    fn unjustified_relaxed_fires() {
        let (diags, counts) = atomics("fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "atomic-ordering");
        assert_eq!(counts.relaxed, 1);
    }

    #[test]
    fn justified_relaxed_is_clean_but_still_counted() {
        let (diags, counts) = atomics(
            "fn f(c: &AtomicU64) {\n\
             c.fetch_add(1, Ordering::Relaxed); // xtask:allow(atomic-ordering, why=stat counter)\n\
             }",
        );
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(counts.relaxed, 1);
    }

    #[test]
    fn annotation_without_why_still_fires() {
        let (diags, _) = atomics(
            "fn f(c: &AtomicU64) {\n\
             c.load(Ordering::Acquire); // xtask:allow(atomic-ordering)\n\
             }",
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("why="), "{}", diags[0].message);
    }

    #[test]
    fn seqcst_is_counted_but_needs_no_why() {
        let (diags, counts) = atomics("fn f(c: &AtomicU64) { c.load(Ordering::SeqCst); }");
        assert!(diags.is_empty());
        assert_eq!(counts.seqcst, 1);
    }

    #[test]
    fn cmp_ordering_is_not_an_atomic_site() {
        let (diags, counts) = atomics("fn f(a: u32, b: u32) -> Ordering { Ordering::Less }");
        assert!(diags.is_empty());
        assert!(counts.is_zero());
    }

    fn hot(source: &str) -> Vec<Diagnostic> {
        let lexed = lex(source);
        let tokens = strip_cfg_test(&lexed.tokens);
        let mut out = Vec::new();
        hot_path_locks("crates/core/src/simulator.rs", &lexed, &tokens, &mut out);
        out
    }

    #[test]
    fn lock_in_hot_path_fires() {
        let diags = hot("use std::sync::Mutex; fn f(m: &Mutex<u32>) { *m.lock().unwrap() }");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "hot-path-lock");
        assert!(diags[0].message.contains("`.lock()` on `m`"));
    }

    #[test]
    fn justified_lock_is_clean() {
        let diags = hot("use std::sync::Mutex;\n\
             fn f(m: &Mutex<u32>) -> u32 {\n\
             // xtask:allow(hot-path-lock, why=once per materialization, not per access)\n\
             *m.lock().unwrap()\n\
             }");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn mutex_construction_fires() {
        let diags = hot("use std::sync::Mutex; fn f() { let m = Mutex::new(0u32); }");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("`Mutex::new`"));
    }

    #[test]
    fn io_read_write_do_not_fire() {
        let lexed = lex(
            "fn f(r: &mut impl Read, w: &mut impl Write, b: &mut [u8]) {\n\
                         r.read(b); w.write(b); w.write();\n\
                         }",
        );
        let tokens = strip_cfg_test(&lexed.tokens);
        let mut out = Vec::new();
        hot_path_locks("crates/core/src/simulator.rs", &lexed, &tokens, &mut out);
        assert!(out.is_empty(), "no RwLock in the file: {out:?}");
    }

    #[test]
    fn non_hot_path_files_are_exempt() {
        let lexed = lex("use std::sync::Mutex; fn f(m: &Mutex<u32>) { m.lock(); }");
        let tokens = strip_cfg_test(&lexed.tokens);
        let mut out = Vec::new();
        hot_path_locks("crates/metrics/src/span.rs", &lexed, &tokens, &mut out);
        assert!(out.is_empty());
    }

    fn edges(source: &str) -> BTreeMap<String, Vec<String>> {
        let lexed = lex(source);
        let tokens = strip_cfg_test(&lexed.tokens);
        let forest = parse_forest(&tokens);
        lock_order_edges("f.rs", &lexed, &tokens, &forest)
    }

    #[test]
    fn nested_acquisitions_become_edges() {
        let out = edges(
            "use std::sync::Mutex;\n\
             struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn both(&self) -> u32 {\n\
                 let ga = self.a.lock().unwrap();\n\
                 let gb = self.b.lock().unwrap();\n\
                 *ga + *gb\n\
               }\n\
             }",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out["f.rs::S::both"], vec!["a -> b".to_owned()]);
    }

    #[test]
    fn single_lock_functions_have_no_edges() {
        let out = edges(
            "use std::sync::Mutex;\n\
             fn one(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }\n\
             fn again(m: &Mutex<u32>) { *m.lock().unwrap() += 1; *m.lock().unwrap() += 1; }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allow_annotation_suppresses_an_edge() {
        let out = edges(
            "use std::sync::Mutex;\n\
             fn both(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {\n\
               let ga = a.lock().unwrap();\n\
               // xtask:allow(lock-order)\n\
               let gb = b.lock().unwrap();\n\
               *ga + *gb\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn receiver_names_follow_field_chains() {
        let out = edges(
            "use std::sync::Mutex;\n\
             fn f(s: &S) -> u32 {\n\
               let g1 = s.inner.lock().unwrap();\n\
               let g2 = s.stats.lock().unwrap();\n\
               *g1 + *g2\n\
             }",
        );
        assert_eq!(out["f.rs::f"], vec!["inner -> stats".to_owned()]);
    }
}
