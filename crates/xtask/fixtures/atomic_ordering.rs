//! Fixture: the `atomic-ordering` rule fires exactly once — an
//! unjustified `Ordering::Relaxed`. The `SeqCst` site below is the
//! conservative default and needs no annotation (it is still counted
//! into the atomic ratchet).
//!
//! Not compiled into any crate; consumed by xtask's rule-engine tests.

use std::sync::atomic::{AtomicU64, Ordering};

fn bump_stats(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

fn publish(flag: &AtomicU64) {
    flag.store(1, Ordering::SeqCst);
}
