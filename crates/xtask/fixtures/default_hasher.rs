//! Fixture: the `default_hasher` rule fires exactly once — a bare
//! `HashMap` construction (randomly keyed SipHash, nondeterministic
//! iteration order across processes).
//!
//! Not compiled into any crate; consumed by xtask's rule-engine tests.

fn footprint() -> usize {
    std::collections::HashMap::<u64, u64>::new().len()
}
