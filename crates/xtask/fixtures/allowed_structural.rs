//! Fixture: every structural-rule hazard below carries its
//! `xtask:allow(rule, why=...)` annotation, so the engine reports
//! nothing under either a hot-path label (`crates/policy/src/...`)
//! or a numeric-scope label (`crates/metrics/src/...`).
//!
//! Not compiled into any crate; consumed by xtask's rule-engine tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

fn bump_stats(counter: &AtomicU64) {
    // xtask:allow(atomic-ordering, why=monotonic stat counter, no ordering dependency)
    counter.fetch_add(1, Ordering::Relaxed);
}

fn drain(shared: &Mutex<Vec<u8>>) -> Vec<u8> {
    // xtask:allow(hot-path-lock, why=called once per flush, not per access)
    shared.lock().expect("poisoned").split_off(0)
}

fn narrow(total: u64) -> u32 {
    // xtask:allow(lossy-cast, why=clamped to u32::MAX on the same expression)
    total.min(u64::from(u32::MAX)) as u32
}

fn exactly_zero(total: f64) -> bool {
    // xtask:allow(float-eq, why=0.0 is an exact sentinel we wrote ourselves)
    total == 0.0
}

fn count_migrations(action: &PolicyAction) -> u64 {
    match action {
        PolicyAction::Migrate { .. } => 1,
        // xtask:allow(match-wildcard, why=fixture demonstrates the justified form)
        _ => 0,
    }
}
