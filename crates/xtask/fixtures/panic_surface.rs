//! Fixture: the panic audit counts exactly one `.unwrap()`, two
//! `.expect(…)`, and three index expressions here — and nothing from the
//! doc comments, the `vec![…]` macro, the pattern/type brackets, or the
//! `#[cfg(test)]` module.
//!
//! Not compiled into any crate; consumed by xtask's panic-audit tests.

/// Doc mentions don't count: `x.unwrap()`, `y.expect("…")`, `z[0]`.
fn surface(values: &[u64]) -> u64 {
    let first = values.first().copied().unwrap();
    let pair: [u64; 2] = [values[0], values[1]];
    let sum = make_vec().last().copied().expect("vec is non-empty");
    let [a, b] = pair;
    a + b + sum + lookup().expect("lookup succeeds")[2]
}

fn make_vec() -> Vec<u64> {
    vec![1, 2, 3]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_in_tests_do_not_count() {
        let v = super::make_vec();
        assert_eq!(v.first().copied().unwrap(), v[0]);
    }
}
