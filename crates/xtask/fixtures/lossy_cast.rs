//! Fixture: the `lossy-cast` rule fires exactly once — a narrowing
//! `as u32` cast. The `as f64` cast and the `u64::from` widening are
//! out of the rule's scope.
//!
//! Not compiled into any crate; consumed by xtask's rule-engine tests.

fn narrow(total_accesses: u64) -> u32 {
    total_accesses as u32
}

fn widen(count: u32) -> (u64, f64) {
    (u64::from(count), count as f64)
}
