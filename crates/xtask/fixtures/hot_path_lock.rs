//! Fixture: the `hot-path-lock` rule fires exactly once — a `.lock()`
//! acquisition in a file scanned under a hot-path label
//! (`crates/policy/src/...`). The io-style `.write(buf)` call is not a
//! lock acquisition (non-empty argument list).
//!
//! Not compiled into any crate; consumed by xtask's rule-engine tests.

use std::io::Write;
use std::sync::Mutex;

fn drain(shared: &Mutex<Vec<u8>>, sink: &mut dyn Write) {
    let buffered = shared.lock().expect("poisoned");
    sink.write(&buffered).expect("io");
}
