//! Fixture: the `serialized_unordered` rule fires exactly once — an
//! `FxHashMap` field inside a `#[derive(Serialize)]` struct. The hasher
//! is deterministic, but serde still serializes the map in iteration
//! order, which depends on insertion history and capacity; serialized
//! reports need a `BTreeMap`.
//!
//! Not compiled into any crate; consumed by xtask's rule-engine tests.

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerPageReport {
    pub total: u64,
    pub per_page: FxHashMap<u64, (u64, u64)>,
}
