//! Fixture: the `rng` rule fires exactly once — a `thread_rng()` call
//! (entropy-seeded randomness; simulation randomness must come from an
//! explicit seed).
//!
//! Not compiled into any crate; consumed by xtask's rule-engine tests.

fn roll() -> u64 {
    rand::thread_rng().gen()
}
