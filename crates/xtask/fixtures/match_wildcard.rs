//! Fixture: the `match-wildcard` rule fires exactly once — a `_` arm
//! in a match whose patterns name the sentinel enum `PolicyAction`.
//! The `MemoryKind` match below is not over a sentinel, so its `_`
//! arm is fine even though its body mentions `PolicyAction`.
//!
//! Not compiled into any crate; consumed by xtask's rule-engine tests.

fn count_migrations(action: &PolicyAction) -> u64 {
    match action {
        PolicyAction::Migrate { .. } => 1,
        _ => 0,
    }
}

fn promote(from: MemoryKind, to: MemoryKind) -> Option<PolicyAction> {
    match (from, to) {
        (MemoryKind::Nvm, MemoryKind::Dram) => Some(PolicyAction::Migrate { from, to }),
        _ => None,
    }
}
