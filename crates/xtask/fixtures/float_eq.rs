//! Fixture: the `float-eq` rule fires exactly once — a `== 0.0`
//! comparison. The range-guard rewrite below it is the recommended
//! form and does not fire; neither does integer equality.
//!
//! Not compiled into any crate; consumed by xtask's rule-engine tests.

fn share_bad(part: f64, total: f64) -> f64 {
    if total == 0.0 {
        return 0.0;
    }
    part / total
}

fn share_good(part: f64, total: f64) -> f64 {
    if total > 0.0 {
        part / total
    } else {
        0.0
    }
}

fn same_page(a: u64, b: u64) -> bool {
    a == b
}
