//! Fixture: the `timing` rule fires exactly once — an unannotated
//! `Instant::now()` call (wall-clock reads must not feed simulation
//! state).
//!
//! Not compiled into any crate; consumed by xtask's rule-engine tests.

use std::time::Instant;

fn elapsed_secs(work: impl FnOnce()) -> f64 {
    let started = Instant::now();
    work();
    started.elapsed().as_secs_f64()
}
