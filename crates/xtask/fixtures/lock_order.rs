//! Fixture: the lock-order extractor records exactly one edge —
//! `first -> second`, from the one function that acquires both locks.
//! The single-lock function contributes no edge.
//!
//! Not compiled into any crate; consumed by xtask's rule-engine tests.

use std::sync::Mutex;

struct Pair {
    first: Mutex<u64>,
    second: Mutex<u64>,
}

impl Pair {
    fn both(&self) -> u64 {
        let a = self.first.lock().expect("poisoned");
        let b = self.second.lock().expect("poisoned");
        *a + *b
    }

    fn only_first(&self) -> u64 {
        *self.first.lock().expect("poisoned")
    }
}
