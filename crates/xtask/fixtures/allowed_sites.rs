//! Fixture: every hazard below carries an `xtask:allow(...)` annotation
//! (trailing or on the preceding line), so the rule engine reports no
//! violations. This is the documented workflow for legitimate timing /
//! rng / hashing sites.
//!
//! Not compiled into any crate; consumed by xtask's rule-engine tests.

use std::time::Instant;

fn wall_clock_throughput(work: impl FnOnce()) -> f64 {
    let started = Instant::now(); // xtask:allow(timing)
    work();
    started.elapsed().as_secs_f64()
}

fn entropy_seed() -> u64 {
    // xtask:allow(rng)
    rand::thread_rng().gen()
}

// xtask:allow(default_hasher)
type UnkeyedMap = std::collections::HashMap<u64, u64, FxBuildHasher>;
