//! Simulation reports: everything the paper's figures are assembled from.

use hybridmem_device::ModuleStats;
use hybridmem_types::{Nanojoules, Nanoseconds};
use serde::{Deserialize, Serialize};

/// Event counters of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counts {
    /// Total demand requests driven through the policy.
    pub requests: u64,
    /// Demand reads.
    pub reads: u64,
    /// Demand writes.
    pub writes: u64,
    /// Read hits served by DRAM.
    pub dram_read_hits: u64,
    /// Write hits served by DRAM.
    pub dram_write_hits: u64,
    /// Read hits served by NVM.
    pub nvm_read_hits: u64,
    /// Write hits served by NVM.
    pub nvm_write_hits: u64,
    /// Page faults (misses in both memories).
    pub faults: u64,
    /// NVM→DRAM page migrations.
    pub migrations_to_dram: u64,
    /// DRAM→NVM page migrations.
    pub migrations_to_nvm: u64,
    /// Page-fault fills into DRAM.
    pub fills_to_dram: u64,
    /// Page-fault fills into NVM.
    pub fills_to_nvm: u64,
    /// Pages evicted from memory to disk.
    pub evictions_to_disk: u64,
}

impl Counts {
    /// Total hits in either memory.
    #[must_use]
    pub const fn hits(&self) -> u64 {
        self.dram_read_hits + self.dram_write_hits + self.nvm_read_hits + self.nvm_write_hits
    }

    /// Overall hit ratio in `[0, 1]`; 0 when no requests ran.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.hits() as f64 / self.requests as f64
        }
    }

    /// Total migrations in both directions.
    #[must_use]
    pub const fn migrations(&self) -> u64 {
        self.migrations_to_dram + self.migrations_to_nvm
    }
}

/// Total request-visible latency, split by the paper's Fig. 2b/4c legend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Demand read/write service time in the memories.
    pub requests: Nanoseconds,
    /// Page-fault (disk) time.
    pub faults: Nanoseconds,
    /// Page-migration time (both directions).
    pub migrations: Nanoseconds,
}

impl LatencyBreakdown {
    /// Total latency across all components.
    #[must_use]
    pub fn total(&self) -> Nanoseconds {
        self.requests + self.faults + self.migrations
    }
}

/// Total energy, split by the paper's Fig. 1/2a/4a legend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Prorated static energy (Eq. 3) over the run.
    pub static_energy: Nanojoules,
    /// Dynamic energy of demand requests.
    pub dynamic: Nanojoules,
    /// Dynamic energy of page-fault fills.
    pub page_faults: Nanojoules,
    /// Dynamic energy of migrations.
    pub migrations: Nanojoules,
}

impl EnergyBreakdown {
    /// Total energy across all components.
    #[must_use]
    pub fn total(&self) -> Nanojoules {
        self.static_energy + self.dynamic + self.page_faults + self.migrations
    }
}

/// Physical writes arriving at the NVM module, split by the paper's
/// Fig. 2c/4b legend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvmWriteBreakdown {
    /// Demand write requests served by NVM.
    pub requests: u64,
    /// Writes from page-fault fills (`PageFactor` per fill).
    pub page_faults: u64,
    /// Writes from migrations into NVM (`PageFactor` per migration).
    pub migrations: u64,
}

impl NvmWriteBreakdown {
    /// Total physical NVM writes.
    #[must_use]
    pub const fn total(&self) -> u64 {
        self.requests + self.page_faults + self.migrations
    }
}

/// NVM wear summary extracted from the
/// [`WearTracker`](hybridmem_device::WearTracker).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WearSummary {
    /// Wear of the most-written NVM page.
    pub max_page_wear: u64,
    /// Mean writes per touched NVM page.
    pub mean_page_wear: f64,
    /// Max/mean wear imbalance (1.0 = perfectly even).
    pub imbalance: f64,
}

/// The complete result of one simulation run.
///
/// # Examples
///
/// ```
/// use hybridmem_core::{ExperimentConfig, PolicyKind};
/// use hybridmem_trace::parsec;
///
/// let spec = parsec::spec("bodytrack")?.capped(5_000);
/// let config = ExperimentConfig::default();
/// let report = config.run(&spec, PolicyKind::DramOnly)?;
/// // 30% of the trace is warmup; the report covers the steady state.
/// let warmup = (spec.total_accesses() as f64 * config.warmup_fraction) as u64;
/// assert_eq!(report.counts.requests, spec.total_accesses() - warmup);
/// assert!(report.amat().value() > 0.0);
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Policy display name.
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// DRAM capacity used, in pages.
    pub dram_pages: u64,
    /// NVM capacity used, in pages.
    pub nvm_pages: u64,
    /// Workload footprint (distinct pages), in pages.
    pub footprint_pages: u64,
    /// Event counters.
    pub counts: Counts,
    /// Latency totals.
    pub latency: LatencyBreakdown,
    /// Energy totals.
    pub energy: EnergyBreakdown,
    /// Physical NVM write totals.
    pub nvm_writes: NvmWriteBreakdown,
    /// NVM wear summary.
    pub wear: WearSummary,
    /// DRAM module accounting.
    pub dram_stats: ModuleStats,
    /// NVM module accounting.
    pub nvm_stats: ModuleStats,
    /// Estimated workload duration (ns) used for static proration.
    pub duration_ns: f64,
}

impl SimulationReport {
    /// Average memory access time: total latency per request (Eq. 1,
    /// measured rather than closed-form).
    #[must_use]
    pub fn amat(&self) -> Nanoseconds {
        if self.counts.requests == 0 {
            return Nanoseconds::ZERO;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.latency.total() / self.counts.requests as f64
        }
    }

    /// Average power (energy) per request including the static share
    /// (Eq. 2 + Eq. 3, measured).
    #[must_use]
    pub fn appr(&self) -> Nanojoules {
        if self.counts.requests == 0 {
            return Nanojoules::ZERO;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.energy.total() / self.counts.requests as f64
        }
    }

    /// Total energy ratio of `self` to `baseline` — the y-axis of
    /// Figs. 1, 2a, and 4a.
    #[must_use]
    pub fn energy_normalized_to(&self, baseline: &Self) -> f64 {
        self.energy.total().ratio_to(baseline.energy.total())
    }

    /// Total AMAT ratio of `self` to `baseline` — the y-axis of Figs. 2b
    /// and 4c.
    #[must_use]
    pub fn amat_normalized_to(&self, baseline: &Self) -> f64 {
        self.amat().ratio_to(baseline.amat())
    }

    /// NVM-write ratio of `self` to `baseline` — the y-axis of Figs. 2c
    /// and 4b.
    #[must_use]
    pub fn nvm_writes_normalized_to(&self, baseline: &Self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.nvm_writes.total() as f64 / baseline.nvm_writes.total() as f64
        }
    }

    /// A multi-line human-readable summary of the run (the format used by
    /// the CLI and the examples).
    ///
    /// # Examples
    ///
    /// ```
    /// use hybridmem_core::{ExperimentConfig, PolicyKind};
    /// use hybridmem_trace::parsec;
    ///
    /// let spec = parsec::spec("bodytrack")?.capped(5_000);
    /// let report = ExperimentConfig::default().run(&spec, PolicyKind::TwoLru)?;
    /// let text = report.text_summary();
    /// assert!(text.contains("two-lru") && text.contains("AMAT"));
    /// # Ok::<(), hybridmem_types::Error>(())
    /// ```
    #[must_use]
    pub fn text_summary(&self) -> String {
        #[allow(clippy::cast_precision_loss)]
        let n = self.counts.requests.max(1) as f64;
        format!(
            "policy {} over {}:\n\
             \x20 memory            {} DRAM + {} NVM pages\n\
             \x20 requests          {} ({:.2}% hit, {} faults)\n\
             \x20 migrations        {} to DRAM, {} to NVM\n\
             \x20 AMAT              {:.1} ns ({:.1}% from migrations)\n\
             \x20 energy/request    {:.2} nJ ({:.1}% static)\n\
             \x20 NVM writes        {} (max page wear {})",
            self.policy,
            self.workload,
            self.dram_pages,
            self.nvm_pages,
            self.counts.requests,
            self.counts.hit_ratio() * 100.0,
            self.counts.faults,
            self.counts.migrations_to_dram,
            self.counts.migrations_to_nvm,
            self.amat().value(),
            self.latency.migrations.value() / self.latency.total().value().max(1e-12) * 100.0,
            self.energy.total().value() / n,
            self.energy.static_energy.value() / self.energy.total().value().max(1e-12) * 100.0,
            self.nvm_writes.total(),
            self.wear.max_page_wear,
        )
    }
}

/// Geometric mean of a non-empty slice (the paper's headline average:
/// "Average numbers reported throughout the paper are geometric means").
///
/// # Panics
///
/// Panics when `values` is empty or contains a non-positive value.
///
/// # Examples
///
/// ```
/// let g = hybridmem_core::geo_mean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn geo_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of an empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    #[allow(clippy::cast_precision_loss)]
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a non-empty slice (the "A-Mean" bars).
///
/// # Panics
///
/// Panics when `values` is empty.
#[must_use]
pub fn arith_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "arithmetic mean of an empty slice");
    #[allow(clippy::cast_precision_loss)]
    {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(requests: u64, latency_total: f64, energy_total: f64) -> SimulationReport {
        SimulationReport {
            policy: "test".into(),
            workload: "w".into(),
            dram_pages: 10,
            nvm_pages: 90,
            footprint_pages: 130,
            counts: Counts {
                requests,
                ..Counts::default()
            },
            latency: LatencyBreakdown {
                requests: Nanoseconds::new(latency_total),
                ..LatencyBreakdown::default()
            },
            energy: EnergyBreakdown {
                dynamic: Nanojoules::new(energy_total),
                ..EnergyBreakdown::default()
            },
            nvm_writes: NvmWriteBreakdown {
                requests: 10,
                page_faults: 20,
                migrations: 30,
            },
            wear: WearSummary::default(),
            dram_stats: ModuleStats::default(),
            nvm_stats: ModuleStats::default(),
            duration_ns: 1e6,
        }
    }

    #[test]
    fn amat_and_appr_divide_by_requests() {
        let r = report(100, 5_000.0, 320.0);
        assert!((r.amat().value() - 50.0).abs() < 1e-12);
        assert!((r.appr().value() - 3.2).abs() < 1e-12);
        let empty = report(0, 0.0, 0.0);
        assert_eq!(empty.amat(), Nanoseconds::ZERO);
        assert_eq!(empty.appr(), Nanojoules::ZERO);
    }

    #[test]
    fn normalization_ratios() {
        let a = report(100, 4_000.0, 100.0);
        let b = report(100, 8_000.0, 400.0);
        assert!((a.amat_normalized_to(&b) - 0.5).abs() < 1e-12);
        assert!((a.energy_normalized_to(&b) - 0.25).abs() < 1e-12);
        assert!((a.nvm_writes_normalized_to(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_helpers() {
        let c = Counts {
            requests: 10,
            dram_read_hits: 2,
            dram_write_hits: 1,
            nvm_read_hits: 3,
            nvm_write_hits: 0,
            faults: 4,
            migrations_to_dram: 5,
            migrations_to_nvm: 7,
            ..Counts::default()
        };
        assert_eq!(c.hits(), 6);
        assert!((c.hit_ratio() - 0.6).abs() < 1e-12);
        assert_eq!(c.migrations(), 12);
        assert_eq!(Counts::default().hit_ratio(), 0.0);
    }

    #[test]
    fn breakdown_totals() {
        let l = LatencyBreakdown {
            requests: Nanoseconds::new(1.0),
            faults: Nanoseconds::new(2.0),
            migrations: Nanoseconds::new(3.0),
        };
        assert_eq!(l.total().value(), 6.0);
        let e = EnergyBreakdown {
            static_energy: Nanojoules::new(1.0),
            dynamic: Nanojoules::new(2.0),
            page_faults: Nanojoules::new(3.0),
            migrations: Nanojoules::new(4.0),
        };
        assert_eq!(e.total().value(), 10.0);
        let w = NvmWriteBreakdown {
            requests: 1,
            page_faults: 2,
            migrations: 3,
        };
        assert_eq!(w.total(), 6);
    }

    #[test]
    fn means() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((arith_mean(&[2.0, 8.0]) - 5.0).abs() < 1e-12);
        assert!((geo_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geo_mean_rejects_zero() {
        let _ = geo_mean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn means_reject_empty() {
        let _ = arith_mean(&[]);
    }

    #[test]
    fn text_summary_is_complete() {
        let r = report(100, 5_000.0, 320.0);
        let text = r.text_summary();
        for needle in ["policy test", "AMAT", "NVM writes", "migrations", "static"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn report_serializes() {
        let r = report(10, 100.0, 10.0);
        let json = serde_json::to_string(&r).unwrap();
        let back: SimulationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
