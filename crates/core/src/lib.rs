//! The hybrid DRAM–NVM memory simulator: the paper's models, the
//! accounting engine, and the experiment methodology.
//!
//! This crate ties the substrates together into the system evaluated in
//! *"An Operating System Level Data Migration Scheme in Hybrid DRAM-NVM
//! Memory Architecture"* (Salkhordeh & Asadi, DATE 2016):
//!
//! * [`model`] — Table I parameters with Eq. 1 (AMAT), Eq. 2 (APPR), and
//!   Eq. 3 (prorated static power) in closed form;
//! * [`HybridSimulator`] — replays page-granular traces through any
//!   [`HybridPolicy`](hybridmem_policy::HybridPolicy) and charges every
//!   hit, fault, fill, and migration against the device models;
//! * [`SimulationReport`] — the measured breakdowns behind every figure
//!   (power: static/dynamic/page-fault/migration; AMAT: requests vs
//!   migrations; NVM writes: requests/page-fault/migration);
//! * [`ExperimentConfig`] / [`compare_policies`] — the paper's evaluation
//!   methodology (75 % memory, 10 % DRAM) over the PARSEC profiles;
//! * [`observe`] — windowed telemetry: a [`WindowedCollector`] event sink
//!   slices runs into per-N-accesses [`IntervalRecord`]s (tier hits,
//!   migrations, occupancy, interval AMAT/APPR) serialized as
//!   deterministic JSONL;
//! * [`ledger`] — drill-down telemetry: a [`PageLedger`] event sink
//!   reconstructs per-page journeys (fills, promotions with Algorithm 1
//!   provenance, demotions with cause, lossy resets) under deterministic
//!   top-K retention;
//! * [`audit`] — run-health auditing: an [`AuditSink`] event sink checks
//!   the conservation laws behind Eq. 1/Eq. 2 online (fills ≡ faults,
//!   occupancy ≤ capacity, demotion pairing, probe consistency, priced
//!   vs. closed-form AMAT) and reports structured [`AuditViolation`]s;
//! * [`faultinject`] / [`health`] / [`journal`] — the robustness layer:
//!   a scripted, deterministic [`FaultPlan`] exercises every
//!   degradation path; [`compare_policies_isolated`] quarantines
//!   failing cells into a [`MatrixHealthReport`] instead of aborting
//!   the matrix; a [`RunJournal`] makes long campaigns crash-safe and
//!   resumable with byte-identical output;
//! * [`flightrec`] — the black box: a bounded [`FlightRecorder`] event
//!   sink rides every instrumented cell, retaining the last N events
//!   plus periodic state snapshots, and dumps a deterministic
//!   `hybridmem-flight-v1` [`FlightRecord`] when a cell panics, errors
//!   out, or trips an audit violation — the raw material for
//!   `hybridmem postmortem` cross-stream correlation.
//!
//! # Examples
//!
//! ```
//! use hybridmem_core::{ExperimentConfig, PolicyKind};
//! use hybridmem_trace::parsec;
//!
//! let spec = parsec::spec("bodytrack")?.capped(10_000);
//! let config = ExperimentConfig::default();
//! let proposed = config.run(&spec, PolicyKind::TwoLru)?;
//! let clock_dwf = config.run(&spec, PolicyKind::ClockDwf)?;
//! assert_eq!(proposed.policy, "two-lru");
//! assert_eq!(clock_dwf.policy, "clock-dwf");
//! assert!(proposed.appr().value() > 0.0);
//! # Ok::<(), hybridmem_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod audit;
mod events;
mod experiments;
pub mod faultinject;
pub mod flightrec;
pub mod health;
pub mod journal;
pub mod ledger;
pub mod model;
pub mod observe;
mod report;
mod simulator;
mod sweep;
mod trace_cache;

pub use audit::{
    write_audit_json, AuditMatrixReport, AuditOptions, AuditReport, AuditSink, AuditViolation,
    AUDIT_SCHEMA,
};
pub use events::{CountingSink, EventSink, FanoutSink, RecordingSink, SimEvent};
pub use experiments::{
    compare_policies, compare_policies_instrumented, compare_policies_isolated,
    compare_policies_observed, compare_policies_threaded, compare_policies_timed,
    flight_recorder_for, matrix_fingerprint, ExperimentConfig, Instrumentation, InstrumentedRun,
    MatrixTiming, PolicyKind, ReplayMode,
};
pub use faultinject::FaultPlan;
pub use flightrec::{
    write_flight_json, FlightEvent, FlightEventKind, FlightMatrixReport, FlightOptions,
    FlightProbe, FlightRecord, FlightRecorder, FlightSnapshot, PanicTripwire, FLIGHT_SCHEMA,
};
pub use health::{
    write_matrix_health_json, CellHealth, CellOutcome, CellStatus, MatrixHealthReport,
    MATRIX_HEALTH_SCHEMA, MAX_CELL_RETRIES,
};
pub use journal::{JournalEntry, RunJournal, JOURNAL_MAGIC, JOURNAL_VERSION};
pub use ledger::{
    write_ledger_jsonl, DemotionCause, LedgerOptions, LedgerReport, LedgerSummary, PageEvent,
    PageLedger, PageRecord, PageSummary, PromotionProvenance,
};
pub use model::{AmatComponents, ApprComponents, ModelParams, Probabilities, TimeModel};
pub use observe::{write_jsonl, IntervalRecord, ObservedRun, WindowedCollector};
pub use report::{
    arith_mean, geo_mean, Counts, EnergyBreakdown, LatencyBreakdown, NvmWriteBreakdown,
    SimulationReport, WearSummary,
};
pub use simulator::HybridSimulator;
pub use sweep::{sweep_dram_fractions, sweep_thresholds, sweep_windows, SweepPoint};
pub use trace_cache::{SpillSource, TraceCache, TraceCacheStats, DEFAULT_BUDGET_BYTES};
