//! Per-cell failure isolation for the experiment matrix.
//!
//! Before this module, one panicking worker aborted the whole
//! `(workload × policy)` matrix and discarded every completed cell.
//! [`run_isolated`] wraps one cell in `catch_unwind`, retries a
//! panicking cell a bounded number of times (immediately and
//! sequentially, so the retry order is deterministic), and turns
//! whatever remains into a typed [`CellOutcome`] — the matrix
//! scheduler keeps going, quarantines the failure, and reports it
//! through the [`MatrixHealthReport`] (`hybridmem-matrix-health-v1`)
//! instead of throwing the run away.
//!
//! Typed [`Error`]s are **not** retried: a deterministic engine fails
//! the same way every time, so retrying an invalid configuration only
//! burns time. Panics are retried because the isolation layer cannot
//! know whether they are deterministic (an injected
//! [`FaultPlan`](crate::FaultPlan) `cell-panic` with `K` no larger
//! than [`MAX_CELL_RETRIES`] recovers exactly as a transient fault
//! would).
//!
//! Like every other report in this workspace, the health report
//! carries no wall-clock fields: the same matrix with the same fault
//! plan produces a byte-identical report at any thread count.

use std::io::Write;
use std::panic::AssertUnwindSafe;

use hybridmem_types::Error;
use serde::{Deserialize, Serialize};

use crate::flightrec::{self, FlightRecord};

/// Schema identifier of the matrix health JSON report.
pub const MATRIX_HEALTH_SCHEMA: &str = "hybridmem-matrix-health-v1";

/// Times a panicking cell is re-run before being quarantined (so a
/// cell gets `MAX_CELL_RETRIES + 1` attempts in total).
pub const MAX_CELL_RETRIES: u64 = 2;

/// What became of one isolated matrix cell.
#[derive(Debug)]
pub enum CellOutcome<T> {
    /// The cell completed, possibly after retried panics.
    Ok {
        /// The cell's result.
        value: T,
        /// Panicking attempts that preceded the success.
        retries: u64,
    },
    /// The cell was quarantined: a typed error, or a panic that
    /// survived the whole retry budget.
    Failed {
        /// The typed error, or the panic message wrapped as one.
        error: Error,
        /// Panicking attempts that were retried before giving up.
        retries: u64,
        /// True when the final failure was a panic rather than a
        /// typed error.
        panicked: bool,
        /// The black-box flight dump of the failing attempt, when a
        /// [`FlightRecorder`](crate::FlightRecorder) was riding the
        /// cell (see [`crate::flightrec`]).
        flight: Option<Box<FlightRecord>>,
    },
}

impl<T> CellOutcome<T> {
    /// The success value, if the cell completed.
    pub fn ok(&self) -> Option<&T> {
        match self {
            Self::Ok { value, .. } => Some(value),
            Self::Failed { .. } => None,
        }
    }

    /// Converts into a plain `Result`, discarding retry bookkeeping.
    ///
    /// # Errors
    ///
    /// Returns the quarantined cell's typed error.
    pub fn into_result(self) -> Result<T, Error> {
        match self {
            Self::Ok { value, .. } => Ok(value),
            Self::Failed { error, .. } => Err(error),
        }
    }

    /// The health-report row for this outcome.
    #[must_use]
    pub fn health(&self, workload: &str, policy: &str) -> CellHealth {
        match self {
            Self::Ok { retries, .. } => CellHealth {
                workload: workload.to_owned(),
                policy: policy.to_owned(),
                status: CellStatus::Ok,
                retries: *retries,
                panicked: false,
                error: None,
            },
            Self::Failed {
                error,
                retries,
                panicked,
                ..
            } => CellHealth {
                workload: workload.to_owned(),
                policy: policy.to_owned(),
                status: CellStatus::Failed,
                retries: *retries,
                panicked: *panicked,
                error: Some(error.to_string()),
            },
        }
    }
}

/// Terminal state of one cell in the health report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum CellStatus {
    /// The cell produced its report.
    Ok,
    /// The cell was quarantined.
    Failed,
}

/// One cell's row in the `hybridmem-matrix-health-v1` report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellHealth {
    /// Workload name of the cell.
    pub workload: String,
    /// Policy name of the cell.
    pub policy: String,
    /// Whether the cell completed or was quarantined.
    pub status: CellStatus,
    /// Panicking attempts that were retried.
    pub retries: u64,
    /// True when the cell's final failure was a panic.
    pub panicked: bool,
    /// The failure message, for quarantined cells.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

/// The matrix-level health roll-up written by `--health-out`: every
/// cell's [`CellHealth`] under the `hybridmem-matrix-health-v1`
/// schema, plus totals CI can gate on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixHealthReport {
    /// Always [`MATRIX_HEALTH_SCHEMA`].
    pub schema: String,
    /// Per-cell health in matrix order (workload-major, policy-minor).
    pub cells: Vec<CellHealth>,
    /// Total cells in the matrix.
    pub total_cells: u64,
    /// Cells that were quarantined.
    pub failed_cells: u64,
    /// Cells that needed at least one retry (completed or not).
    pub retried_cells: u64,
    /// True when every cell completed without a single retry.
    pub clean: bool,
}

impl MatrixHealthReport {
    /// Rolls cell rows into the gateable aggregate.
    #[must_use]
    pub fn new(cells: Vec<CellHealth>) -> Self {
        let total_cells = cells.len() as u64;
        let failed_cells = cells
            .iter()
            .filter(|c| c.status == CellStatus::Failed)
            .count() as u64;
        let retried_cells = cells.iter().filter(|c| c.retries > 0).count() as u64;
        Self {
            schema: MATRIX_HEALTH_SCHEMA.to_owned(),
            cells,
            total_cells,
            failed_cells,
            retried_cells,
            clean: failed_cells == 0 && retried_cells == 0,
        }
    }
}

/// Writes the matrix health report as pretty-printed JSON plus a
/// trailing newline — the `--health-out` artifact CI parses.
///
/// # Errors
///
/// Returns any I/O error from the writer, and wraps (unreachable for
/// this type) serialization failures as [`std::io::ErrorKind::Other`].
pub fn write_matrix_health_json<W: Write>(
    writer: &mut W,
    report: &MatrixHealthReport,
) -> std::io::Result<()> {
    let text = serde_json::to_string_pretty(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::Other, e))?;
    writer.write_all(text.as_bytes())?;
    writer.write_all(b"\n")
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_owned()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one matrix cell inside `catch_unwind`, retrying panics up to
/// [`MAX_CELL_RETRIES`] times (immediately and on the same worker, so
/// retry ordering is deterministic) and quarantining whatever still
/// fails. Typed errors are returned on the first attempt — the engine
/// is deterministic, so they would fail identically every time.
pub fn run_isolated<T, F>(workload: &str, policy: &str, run: F) -> CellOutcome<T>
where
    F: Fn() -> Result<T, Error>,
{
    let mut retries = 0u64;
    loop {
        // Discard any probe a previous attempt (or a sibling cell that
        // ran earlier on this worker) left behind, so the probe taken
        // after `catch_unwind` always belongs to *this* attempt.
        let _ = flightrec::take_probe();
        match std::panic::catch_unwind(AssertUnwindSafe(&run)) {
            Ok(Ok(value)) => {
                let _ = flightrec::take_probe();
                return CellOutcome::Ok { value, retries };
            }
            Ok(Err(error)) => {
                let flight = flightrec::take_probe()
                    .map(|p| Box::new(p.capture("error", Some(error.to_string()), retries)));
                return CellOutcome::Failed {
                    error,
                    retries,
                    panicked: false,
                    flight,
                };
            }
            Err(payload) => {
                if retries < MAX_CELL_RETRIES {
                    retries += 1;
                    continue;
                }
                let message = panic_message(payload.as_ref());
                let flight = flightrec::take_probe()
                    .map(|p| Box::new(p.capture("panic", Some(message.clone()), retries)));
                return CellOutcome::Failed {
                    error: Error::invalid_input(format!(
                        "cell {workload}/{policy} panicked: {message}"
                    )),
                    retries,
                    panicked: true,
                    flight,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn clean_cells_complete_without_retries() {
        let outcome = run_isolated("w", "p", || Ok::<_, Error>(7));
        match outcome {
            CellOutcome::Ok { value, retries } => {
                assert_eq!(value, 7);
                assert_eq!(retries, 0);
            }
            CellOutcome::Failed { .. } => panic!("clean cell must not fail"),
        }
    }

    #[test]
    fn typed_errors_are_not_retried() {
        let attempts = AtomicU64::new(0);
        let outcome = run_isolated("w", "p", || {
            attempts.fetch_add(1, Ordering::Relaxed);
            Err::<(), _>(Error::invalid_input("bad config"))
        });
        assert_eq!(attempts.load(Ordering::Relaxed), 1);
        match outcome {
            CellOutcome::Failed {
                error,
                retries,
                panicked,
                flight,
            } => {
                assert!(error.to_string().contains("bad config"));
                assert_eq!(retries, 0);
                assert!(!panicked);
                assert!(flight.is_none(), "no recorder was riding this cell");
            }
            CellOutcome::Ok { .. } => panic!("typed error must fail the cell"),
        }
    }

    #[test]
    fn transient_panics_recover_within_the_budget() {
        let attempts = AtomicU64::new(0);
        let outcome = run_isolated("w", "p", || {
            if attempts.fetch_add(1, Ordering::Relaxed) < MAX_CELL_RETRIES {
                panic!("transient");
            }
            Ok::<_, Error>("done")
        });
        match outcome {
            CellOutcome::Ok { value, retries } => {
                assert_eq!(value, "done");
                assert_eq!(retries, MAX_CELL_RETRIES);
            }
            CellOutcome::Failed { .. } => panic!("cell recovers inside the budget"),
        }
    }

    #[test]
    fn persistent_panics_are_quarantined_with_the_message() {
        let attempts = AtomicU64::new(0);
        let outcome = run_isolated("bodytrack", "two-lru", || -> Result<(), Error> {
            attempts.fetch_add(1, Ordering::Relaxed);
            panic!("injected fault: scripted");
        });
        assert_eq!(
            attempts.load(Ordering::Relaxed),
            MAX_CELL_RETRIES + 1,
            "budget exhausted"
        );
        match outcome {
            CellOutcome::Failed {
                error,
                retries,
                panicked,
                ..
            } => {
                let text = error.to_string();
                assert!(text.contains("bodytrack/two-lru"), "{text}");
                assert!(text.contains("injected fault: scripted"), "{text}");
                assert_eq!(retries, MAX_CELL_RETRIES);
                assert!(panicked);
            }
            CellOutcome::Ok { .. } => panic!("persistent panic must quarantine"),
        }
    }

    #[test]
    fn a_published_flight_probe_is_captured_when_the_cell_dies() {
        use crate::flightrec::{publish_probe, FlightOptions, FlightRecorder};
        use crate::EventSink;
        use hybridmem_policy::PolicyAction;
        use hybridmem_types::{MemoryKind, PageId};

        let outcome = run_isolated("canneal", "two-lru", || -> Result<(), Error> {
            // What the experiment runner does per attempt: build a
            // recorder, publish its probe, simulate, then die.
            let mut recorder =
                FlightRecorder::new("canneal", "two-lru", FlightOptions::with_events(8));
            publish_probe(recorder.probe());
            for page in 0..3 {
                recorder.record(crate::SimEvent::Fault {
                    access: hybridmem_types::PageAccess::read(PageId::new(page)),
                });
                recorder.record(crate::SimEvent::Action {
                    action: PolicyAction::FillFromDisk {
                        page: PageId::new(page),
                        into: MemoryKind::Dram,
                    },
                });
            }
            panic!("injected fault: mid-run");
        });
        match outcome {
            CellOutcome::Failed {
                panicked, flight, ..
            } => {
                assert!(panicked);
                let flight = flight.expect("the published probe must be captured");
                assert_eq!(flight.trigger, "panic");
                assert_eq!(flight.retries, MAX_CELL_RETRIES);
                assert_eq!(flight.accesses, 3, "the last attempt's recording");
                assert_eq!(flight.final_access, 2);
                assert!(flight
                    .error
                    .as_deref()
                    .is_some_and(|e| e.contains("injected fault: mid-run")));
            }
            CellOutcome::Ok { .. } => panic!("cell must be quarantined"),
        }
        assert!(
            crate::flightrec::take_probe().is_none(),
            "run_isolated must not leak the probe to the next cell"
        );
    }

    #[test]
    fn a_successful_cell_discards_its_flight_probe() {
        use crate::flightrec::{publish_probe, FlightOptions, FlightRecorder};

        let outcome = run_isolated("w", "p", || {
            let recorder = FlightRecorder::new("w", "p", FlightOptions::default());
            publish_probe(recorder.probe());
            Ok::<_, Error>(())
        });
        assert!(matches!(outcome, CellOutcome::Ok { .. }));
        assert!(
            crate::flightrec::take_probe().is_none(),
            "the probe must not survive a completed cell"
        );
    }

    #[test]
    fn health_report_rolls_up_and_roundtrips() {
        let ok = run_isolated("w1", "p", || Ok::<_, Error>(()));
        let failed = run_isolated("w2", "p", || Err::<(), _>(Error::invalid_input("scripted")));
        let report = MatrixHealthReport::new(vec![ok.health("w1", "p"), failed.health("w2", "p")]);
        assert_eq!(report.schema, MATRIX_HEALTH_SCHEMA);
        assert_eq!(report.total_cells, 2);
        assert_eq!(report.failed_cells, 1);
        assert_eq!(report.retried_cells, 0);
        assert!(!report.clean);
        assert_eq!(
            report.cells[1].error.as_deref(),
            Some("invalid input: scripted")
        );

        let mut bytes = Vec::new();
        write_matrix_health_json(&mut bytes, &report).unwrap();
        let parsed: MatrixHealthReport = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn recovered_cells_keep_the_report_unclean_but_unfailed() {
        let attempts = AtomicU64::new(0);
        let recovered = run_isolated("w", "p", || {
            if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("once");
            }
            Ok::<_, Error>(())
        });
        let report = MatrixHealthReport::new(vec![recovered.health("w", "p")]);
        assert_eq!(report.failed_cells, 0);
        assert_eq!(report.retried_cells, 1);
        assert!(
            !report.clean,
            "a retry is visible even when the cell recovered"
        );
        assert_eq!(report.cells[0].status, CellStatus::Ok);
    }
}
