//! Experiment runners: the paper's evaluation methodology in one place.
//!
//! The paper's setup (Section V-A): "the total memory size is set to 75% of
//! the total pages and the DRAM size is set to 10% of the total memory
//! size". [`ExperimentConfig`] captures those ratios (and every other knob)
//! and [`ExperimentConfig::run`] executes one `(workload, policy)` cell of
//! the evaluation matrix; [`compare_policies`] runs a whole row.

use hybridmem_policy::{
    AdaptiveConfig, AdaptiveTwoLruPolicy, ClockDwfPolicy, ClockProPolicy, DramCachePolicy,
    HybridPolicy, SingleTierPolicy, TwoLruConfig, TwoLruPolicy,
};
use hybridmem_trace::{TraceGenerator, WorkloadSpec};
use hybridmem_types::{Error, PageAccess, PageCount, Result};
use serde::{Deserialize, Serialize};

use crate::{HybridSimulator, SimulationReport, TimeModel};

/// Which policy to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum PolicyKind {
    /// The paper's proposed two-LRU migration scheme (Algorithm 1).
    TwoLru,
    /// The CLOCK-DWF baseline.
    ClockDwf,
    /// DRAM-only LRU memory of the full (DRAM+NVM) capacity.
    DramOnly,
    /// NVM-only LRU memory of the full capacity.
    NvmOnly,
    /// The adaptive-threshold extension over the proposed scheme.
    AdaptiveTwoLru,
    /// CLOCK-Pro-lite: the pre-CLOCK-DWF baseline, adapted to hybrid memory.
    ClockPro,
    /// DRAM-as-a-cache over NVM — the other related-work organization.
    DramCache,
}

impl PolicyKind {
    /// All kinds, in reporting order.
    #[must_use]
    pub const fn all() -> [Self; 7] {
        [
            Self::TwoLru,
            Self::ClockDwf,
            Self::ClockPro,
            Self::DramCache,
            Self::DramOnly,
            Self::NvmOnly,
            Self::AdaptiveTwoLru,
        ]
    }

    /// Stable display name (matches [`HybridPolicy::name`]).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::TwoLru => "two-lru",
            Self::ClockDwf => "clock-dwf",
            Self::DramOnly => "dram-only",
            Self::NvmOnly => "nvm-only",
            Self::AdaptiveTwoLru => "two-lru-adaptive",
            Self::ClockPro => "clock-pro",
            Self::DramCache => "dram-cache",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full configuration of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Main memory capacity as a fraction of the workload footprint
    /// (paper: 0.75).
    pub memory_fraction: f64,
    /// DRAM share of the main memory (paper: 0.10).
    pub dram_fraction: f64,
    /// Promotion thresholds/windows of the proposed scheme.
    pub read_threshold: u32,
    /// See [`ExperimentConfig::read_threshold`].
    pub write_threshold: u32,
    /// `readperc` window fraction.
    pub read_window: f64,
    /// `writeperc` window fraction.
    pub write_window: f64,
    /// Adaptive-extension controller configuration.
    pub adaptive: AdaptiveConfig,
    /// Trace generator seed.
    pub seed: u64,
    /// Duration model for static-power proration.
    pub time_model: TimeModel,
    /// Fraction of the trace driven as warmup before accounting starts, in
    /// `[0, 1)`. The paper minimizes cold-start effects by using the
    /// largest PARSEC inputs; we do it by measuring the steady state only.
    pub warmup_fraction: f64,
}

impl ExperimentConfig {
    /// The paper's setup: 75% memory, 10% DRAM, default thresholds.
    #[must_use]
    pub fn date2016() -> Self {
        Self {
            memory_fraction: 0.75,
            dram_fraction: 0.10,
            read_threshold: TwoLruConfig::DEFAULT_READ_THRESHOLD,
            write_threshold: TwoLruConfig::DEFAULT_WRITE_THRESHOLD,
            read_window: TwoLruConfig::DEFAULT_READ_WINDOW,
            write_window: TwoLruConfig::DEFAULT_WRITE_WINDOW,
            adaptive: AdaptiveConfig::new(),
            seed: 42,
            time_model: TimeModel::date2016(),
            warmup_fraction: 0.3,
        }
    }

    /// Memory sizes for a workload: `(dram_pages, nvm_pages, total_pages)`.
    ///
    /// Total memory is `memory_fraction` of the footprint; DRAM is
    /// `dram_fraction` of that; NVM is the remainder. Every size is at
    /// least one page.
    #[must_use]
    pub fn memory_sizes(&self, spec: &WorkloadSpec) -> (PageCount, PageCount, PageCount) {
        let total = spec.working_set.scaled(self.memory_fraction);
        let total = PageCount::new(total.value().max(2));
        let dram = total.scaled(self.dram_fraction);
        let nvm = PageCount::new((total.value() - dram.value()).max(1));
        (dram, nvm, total)
    }

    /// Builds the policy instance for one workload.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the derived sizes or the
    /// configured thresholds are invalid.
    pub fn build_policy(
        &self,
        kind: PolicyKind,
        spec: &WorkloadSpec,
    ) -> Result<Box<dyn HybridPolicy>> {
        let (dram, nvm, total) = self.memory_sizes(spec);
        let two_lru_config = TwoLruConfig::with_thresholds(
            dram,
            nvm,
            self.read_threshold,
            self.write_threshold,
            self.read_window,
            self.write_window,
        );
        Ok(match kind {
            PolicyKind::TwoLru => Box::new(TwoLruPolicy::new(two_lru_config?)),
            PolicyKind::ClockDwf => Box::new(ClockDwfPolicy::new(dram, nvm)?),
            PolicyKind::DramOnly => Box::new(SingleTierPolicy::dram_only(total)?),
            PolicyKind::NvmOnly => Box::new(SingleTierPolicy::nvm_only(total)?),
            PolicyKind::AdaptiveTwoLru => {
                Box::new(AdaptiveTwoLruPolicy::new(two_lru_config?, self.adaptive))
            }
            PolicyKind::ClockPro => Box::new(ClockProPolicy::new(dram, nvm)?),
            PolicyKind::DramCache => Box::new(DramCachePolicy::new(dram, nvm)?),
        })
    }

    /// Runs one `(workload, policy)` cell: generates the trace, simulates,
    /// and returns the report.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the workload or derived
    /// configuration is invalid.
    pub fn run(&self, spec: &WorkloadSpec, kind: PolicyKind) -> Result<SimulationReport> {
        spec.validate()?;
        if !(0.0..1.0).contains(&self.warmup_fraction) {
            return Err(Error::invalid_config(format!(
                "warmup_fraction must be in [0, 1), got {}",
                self.warmup_fraction
            )));
        }
        let policy = self.build_policy(kind, spec)?;
        let mut simulator = HybridSimulator::new(
            policy,
            hybridmem_device::MemoryCharacteristics::dram_date2016(),
            hybridmem_device::MemoryCharacteristics::pcm_date2016(),
            hybridmem_device::DiskCharacteristics::hdd_date2016(),
            hybridmem_device::MigrationEngine::new(),
            self.time_model,
        );
        // A scaled-down trace runs against a proportionally scaled memory;
        // report static power as if at nominal size, over the workload's
        // true duration density (see DESIGN.md).
        simulator.set_static_scale(1.0 / spec.scale_factor());
        simulator.set_density_hint(spec.nominal_density());
        let mut trace = TraceGenerator::new(spec.clone(), self.seed).map(PageAccess::from);
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let warmup = (spec.total_accesses() as f64 * self.warmup_fraction) as u64;
        for access in trace.by_ref().take(warmup as usize) {
            simulator.step(access);
        }
        simulator.reset_accounting();
        simulator.run(trace);
        Ok(simulator.into_report(spec.name.clone()))
    }

    /// Runs several policies over the *same* trace (same seed), returning
    /// reports in the order given.
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    pub fn compare(
        &self,
        spec: &WorkloadSpec,
        kinds: &[PolicyKind],
    ) -> Result<Vec<SimulationReport>> {
        kinds.iter().map(|&kind| self.run(spec, kind)).collect()
    }
}

impl Default for ExperimentConfig {
    /// Defaults to [`ExperimentConfig::date2016`].
    fn default() -> Self {
        Self::date2016()
    }
}

/// Runs `kinds` over every workload in `specs`, in parallel across
/// workloads (one OS thread each; the simulator itself is single-threaded
/// and deterministic).
///
/// Returns, for each spec in order, the reports in `kinds` order.
///
/// # Errors
///
/// Propagates the first failing run.
///
/// # Examples
///
/// ```
/// use hybridmem_core::{compare_policies, ExperimentConfig, PolicyKind};
/// use hybridmem_trace::parsec;
///
/// let specs: Vec<_> = ["bodytrack", "raytrace"]
///     .iter()
///     .map(|n| parsec::spec(n).map(|s| s.capped(2_000)))
///     .collect::<Result<_, _>>()?;
/// let rows = compare_policies(
///     &specs,
///     &[PolicyKind::TwoLru, PolicyKind::DramOnly],
///     &ExperimentConfig::default(),
/// )?;
/// assert_eq!(rows.len(), 2);
/// assert_eq!(rows[0].len(), 2);
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
pub fn compare_policies(
    specs: &[WorkloadSpec],
    kinds: &[PolicyKind],
    config: &ExperimentConfig,
) -> Result<Vec<Vec<SimulationReport>>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| scope.spawn(move || config.compare(spec, kinds)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| Error::invalid_input("simulation thread panicked".to_owned()))?
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem_trace::{parsec, LocalityParams};

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec::new("test", 200, 20_000, 5_000, LocalityParams::balanced()).unwrap()
    }

    #[test]
    fn memory_sizes_follow_the_paper_ratios() {
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        let (dram, nvm, total) = config.memory_sizes(&spec);
        assert_eq!(total, PageCount::new(150)); // 75% of 200
        assert_eq!(dram, PageCount::new(15)); // 10% of 150
        assert_eq!(nvm, PageCount::new(135));
        assert_eq!(dram + nvm, total);
    }

    #[test]
    fn tiny_workloads_get_at_least_one_page_each() {
        let config = ExperimentConfig::date2016();
        let spec = WorkloadSpec::new("tiny", 2, 10, 0, LocalityParams::balanced()).unwrap();
        let (dram, nvm, _) = config.memory_sizes(&spec);
        assert!(dram.value() >= 1);
        assert!(nvm.value() >= 1);
    }

    #[test]
    fn run_produces_consistent_reports_for_all_policies() {
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let warmup = (spec.total_accesses() as f64 * config.warmup_fraction) as u64;
        for kind in PolicyKind::all() {
            let report = config.run(&spec, kind).unwrap();
            assert_eq!(report.policy, kind.name(), "{kind}");
            assert_eq!(report.counts.requests, spec.total_accesses() - warmup);
            assert_eq!(
                report.counts.hits() + report.counts.faults,
                report.counts.requests
            );
            assert!(report.amat().value() > 0.0);
            assert!(report.appr().value() > 0.0);
        }
    }

    #[test]
    fn same_seed_same_report() {
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        let a = config.run(&spec, PolicyKind::TwoLru).unwrap();
        let b = config.run(&spec, PolicyKind::TwoLru).unwrap();
        assert_eq!(a, b);
        let different = ExperimentConfig { seed: 43, ..config }
            .run(&spec, PolicyKind::TwoLru)
            .unwrap();
        assert_ne!(a, different);
    }

    #[test]
    fn dram_only_has_no_nvm_and_no_migrations() {
        let report = ExperimentConfig::date2016()
            .run(&small_spec(), PolicyKind::DramOnly)
            .unwrap();
        assert_eq!(report.nvm_pages, 0);
        assert_eq!(report.counts.migrations(), 0);
        assert_eq!(report.nvm_writes.total(), 0);
    }

    #[test]
    fn compare_runs_in_order() {
        let config = ExperimentConfig::date2016();
        let reports = config
            .compare(&small_spec(), &[PolicyKind::ClockDwf, PolicyKind::TwoLru])
            .unwrap();
        assert_eq!(reports[0].policy, "clock-dwf");
        assert_eq!(reports[1].policy, "two-lru");
    }

    #[test]
    fn parallel_compare_matches_sequential() {
        let config = ExperimentConfig::date2016();
        let specs = vec![
            small_spec(),
            parsec::spec("bodytrack").unwrap().capped(3_000),
        ];
        let kinds = [PolicyKind::TwoLru, PolicyKind::DramOnly];
        let parallel = compare_policies(&specs, &kinds, &config).unwrap();
        for (spec, row) in specs.iter().zip(&parallel) {
            let sequential = config.compare(spec, &kinds).unwrap();
            assert_eq!(*row, sequential);
        }
    }

    #[test]
    fn policy_kind_names_are_stable() {
        assert_eq!(PolicyKind::TwoLru.to_string(), "two-lru");
        assert_eq!(PolicyKind::all().len(), 7);
    }
}
