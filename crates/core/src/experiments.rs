//! Experiment runners: the paper's evaluation methodology in one place.
//!
//! The paper's setup (Section V-A): "the total memory size is set to 75% of
//! the total pages and the DRAM size is set to 10% of the total memory
//! size". [`ExperimentConfig`] captures those ratios (and every other knob)
//! and [`ExperimentConfig::run`] executes one `(workload, policy)` cell of
//! the evaluation matrix; [`compare_policies`] runs a whole row.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use hybridmem_metrics::{MetricsSnapshot, SpanProfiler};
use hybridmem_policy::{
    AdaptiveConfig, AdaptiveTwoLruPolicy, ClockDwfPolicy, ClockProPolicy, DramCachePolicy,
    HybridPolicy, SingleTierPolicy, TwoLruConfig, TwoLruPolicy,
};
use hybridmem_trace::binfmt::BinTraceStream;
use hybridmem_trace::{TraceGenerator, WorkloadSpec};
use hybridmem_types::{fx_hash_one, Error, PageAccess, PageCount, Result};
use serde::{Deserialize, Serialize};

use crate::faultinject::FaultPlan;
use crate::flightrec::{self, FlightOptions, FlightRecord, FlightRecorder, PanicTripwire};
use crate::health::{run_isolated, CellOutcome, MatrixHealthReport};
use crate::journal::RunJournal;
use crate::{
    AuditOptions, AuditReport, AuditSink, EventSink, FanoutSink, HybridSimulator, IntervalRecord,
    LedgerOptions, LedgerReport, ObservedRun, PageLedger, SimulationReport, TimeModel, TraceCache,
    WindowedCollector,
};

/// Which policy to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum PolicyKind {
    /// The paper's proposed two-LRU migration scheme (Algorithm 1).
    TwoLru,
    /// The CLOCK-DWF baseline.
    ClockDwf,
    /// DRAM-only LRU memory of the full (DRAM+NVM) capacity.
    DramOnly,
    /// NVM-only LRU memory of the full capacity.
    NvmOnly,
    /// The adaptive-threshold extension over the proposed scheme.
    AdaptiveTwoLru,
    /// CLOCK-Pro-lite: the pre-CLOCK-DWF baseline, adapted to hybrid memory.
    ClockPro,
    /// DRAM-as-a-cache over NVM — the other related-work organization.
    DramCache,
}

impl PolicyKind {
    /// All kinds, in reporting order.
    #[must_use]
    pub const fn all() -> [Self; 7] {
        [
            Self::TwoLru,
            Self::ClockDwf,
            Self::ClockPro,
            Self::DramCache,
            Self::DramOnly,
            Self::NvmOnly,
            Self::AdaptiveTwoLru,
        ]
    }

    /// Stable display name (matches [`HybridPolicy::name`]).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::TwoLru => "two-lru",
            Self::ClockDwf => "clock-dwf",
            Self::DramOnly => "dram-only",
            Self::NvmOnly => "nvm-only",
            Self::AdaptiveTwoLru => "two-lru-adaptive",
            Self::ClockPro => "clock-pro",
            Self::DramCache => "dram-cache",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the simulator consumes a trace.
///
/// Both modes produce **byte-identical** output — every access flows
/// through the same per-access accounting in trace order either way (see
/// [`HybridSimulator::run_slice_batched`]). `Serial` exists as the
/// determinism oracle the batched path is tested against; `Batched` is the
/// default because it amortizes policy dispatch over
/// [`HybridSimulator::BATCH_RECORDS`]-access chunks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ReplayMode {
    /// One policy call per access — the reference path.
    Serial,
    /// One policy call per chunk of accesses (the fast default).
    #[default]
    Batched,
}

/// Full configuration of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Main memory capacity as a fraction of the workload footprint
    /// (paper: 0.75).
    pub memory_fraction: f64,
    /// DRAM share of the main memory (paper: 0.10).
    pub dram_fraction: f64,
    /// Promotion thresholds/windows of the proposed scheme.
    pub read_threshold: u32,
    /// See [`ExperimentConfig::read_threshold`].
    pub write_threshold: u32,
    /// `readperc` window fraction.
    pub read_window: f64,
    /// `writeperc` window fraction.
    pub write_window: f64,
    /// Adaptive-extension controller configuration.
    pub adaptive: AdaptiveConfig,
    /// Trace generator seed.
    pub seed: u64,
    /// Duration model for static-power proration.
    pub time_model: TimeModel,
    /// Fraction of the trace driven as warmup before accounting starts, in
    /// `[0, 1)`. The paper minimizes cold-start effects by using the
    /// largest PARSEC inputs; we do it by measuring the steady state only.
    pub warmup_fraction: f64,
    /// Trace replay driver (defaults to [`ReplayMode::Batched`]; both
    /// modes are byte-identical).
    #[serde(default)]
    pub replay: ReplayMode,
}

impl ExperimentConfig {
    /// The paper's setup: 75% memory, 10% DRAM, default thresholds.
    #[must_use]
    pub fn date2016() -> Self {
        Self {
            memory_fraction: 0.75,
            dram_fraction: 0.10,
            read_threshold: TwoLruConfig::DEFAULT_READ_THRESHOLD,
            write_threshold: TwoLruConfig::DEFAULT_WRITE_THRESHOLD,
            read_window: TwoLruConfig::DEFAULT_READ_WINDOW,
            write_window: TwoLruConfig::DEFAULT_WRITE_WINDOW,
            adaptive: AdaptiveConfig::new(),
            seed: 42,
            time_model: TimeModel::date2016(),
            warmup_fraction: 0.3,
            replay: ReplayMode::default(),
        }
    }

    /// Memory sizes for a workload: `(dram_pages, nvm_pages, total_pages)`.
    ///
    /// Total memory is `memory_fraction` of the footprint; DRAM is
    /// `dram_fraction` of that; NVM is the remainder. Every size is at
    /// least one page.
    #[must_use]
    pub fn memory_sizes(&self, spec: &WorkloadSpec) -> (PageCount, PageCount, PageCount) {
        let total = spec.working_set.scaled(self.memory_fraction);
        let total = PageCount::new(total.value().max(2));
        let dram = total.scaled(self.dram_fraction);
        let nvm = PageCount::new((total.value() - dram.value()).max(1));
        (dram, nvm, total)
    }

    /// Builds the policy instance for one workload.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the derived sizes or the
    /// configured thresholds are invalid.
    pub fn build_policy(
        &self,
        kind: PolicyKind,
        spec: &WorkloadSpec,
    ) -> Result<Box<dyn HybridPolicy>> {
        let (dram, nvm, total) = self.memory_sizes(spec);
        let two_lru_config = TwoLruConfig::with_thresholds(
            dram,
            nvm,
            self.read_threshold,
            self.write_threshold,
            self.read_window,
            self.write_window,
        );
        Ok(match kind {
            PolicyKind::TwoLru => Box::new(TwoLruPolicy::new(two_lru_config?)),
            PolicyKind::ClockDwf => Box::new(ClockDwfPolicy::new(dram, nvm)?),
            PolicyKind::DramOnly => Box::new(SingleTierPolicy::dram_only(total)?),
            PolicyKind::NvmOnly => Box::new(SingleTierPolicy::nvm_only(total)?),
            PolicyKind::AdaptiveTwoLru => {
                Box::new(AdaptiveTwoLruPolicy::new(two_lru_config?, self.adaptive))
            }
            PolicyKind::ClockPro => Box::new(ClockProPolicy::new(dram, nvm)?),
            PolicyKind::DramCache => Box::new(DramCachePolicy::new(dram, nvm)?),
        })
    }

    /// Validates the cell inputs shared by [`ExperimentConfig::run`] and
    /// [`ExperimentConfig::run_cached`].
    fn validate_cell(&self, spec: &WorkloadSpec) -> Result<()> {
        spec.validate()?;
        if !(0.0..1.0).contains(&self.warmup_fraction) {
            return Err(Error::invalid_config(format!(
                "warmup_fraction must be in [0, 1), got {}",
                self.warmup_fraction
            )));
        }
        Ok(())
    }

    /// Builds the configured simulator for one cell.
    fn build_simulator(&self, kind: PolicyKind, spec: &WorkloadSpec) -> Result<HybridSimulator> {
        let policy = self.build_policy(kind, spec)?;
        let mut simulator = HybridSimulator::new(
            policy,
            hybridmem_device::MemoryCharacteristics::dram_date2016(),
            hybridmem_device::MemoryCharacteristics::pcm_date2016(),
            hybridmem_device::DiskCharacteristics::hdd_date2016(),
            hybridmem_device::MigrationEngine::new(),
            self.time_model,
        );
        // A scaled-down trace runs against a proportionally scaled memory;
        // report static power as if at nominal size, over the workload's
        // true duration density (see DESIGN.md).
        simulator.set_static_scale(1.0 / spec.scale_factor());
        simulator.set_density_hint(spec.nominal_density());
        Ok(simulator)
    }

    /// Number of leading trace accesses driven as warmup.
    fn warmup_len(&self, spec: &WorkloadSpec) -> usize {
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        {
            (spec.total_accesses() as f64 * self.warmup_fraction) as usize
        }
    }

    /// Drives one trace slice through the configured replay driver.
    fn drive_slice(&self, simulator: &mut HybridSimulator, slice: &[PageAccess]) {
        match self.replay {
            ReplayMode::Serial => simulator.run_slice(slice),
            ReplayMode::Batched => simulator.run_slice_batched(slice),
        }
    }

    /// Drives one chunk of an incrementally produced trace, resetting the
    /// simulator's accounting exactly at the warmup boundary — the chunked
    /// equivalent of `run_slice(warmup); reset; run_slice(rest)`.
    fn drive_chunk(
        &self,
        simulator: &mut HybridSimulator,
        warmup: usize,
        position: &mut usize,
        chunk: &[PageAccess],
    ) {
        let mut slice = chunk;
        if *position < warmup {
            let take = (warmup - *position).min(slice.len());
            self.drive_slice(simulator, &slice[..take]);
            *position += take;
            slice = &slice[take..];
            if *position == warmup {
                simulator.reset_accounting();
            }
        }
        if !slice.is_empty() {
            self.drive_slice(simulator, slice);
            *position += slice.len();
        }
    }

    /// Replays the cell's trace straight out of the generator in
    /// [`HybridSimulator::BATCH_RECORDS`]-access chunks, never holding more
    /// than one chunk resident.
    fn replay_generator(&self, simulator: &mut HybridSimulator, spec: &WorkloadSpec) {
        let warmup = self.warmup_len(spec);
        let mut position = 0usize;
        let mut source = TraceGenerator::new(spec.clone(), self.seed).map(PageAccess::from);
        let mut buf: Vec<PageAccess> = Vec::with_capacity(HybridSimulator::BATCH_RECORDS);
        loop {
            buf.clear();
            buf.extend(source.by_ref().take(HybridSimulator::BATCH_RECORDS));
            if buf.is_empty() {
                break;
            }
            self.drive_chunk(simulator, warmup, &mut position, &buf);
        }
    }

    /// Replays an oversize trace from a verified binary spill stream in
    /// fixed-size chunks (see [`TraceCache::open_stream`]).
    ///
    /// # Errors
    ///
    /// Propagates a truncated or corrupted spill body as
    /// [`Error::ParseTrace`] — the file's header was verified at open, so
    /// mid-stream damage means the file changed underneath us.
    fn replay_stream<R: std::io::Read>(
        &self,
        simulator: &mut HybridSimulator,
        spec: &WorkloadSpec,
        mut stream: BinTraceStream<R>,
    ) -> Result<()> {
        let warmup = self.warmup_len(spec);
        let mut position = 0usize;
        let mut buf: Vec<PageAccess> = Vec::new();
        while let Some(chunk) = stream.next_chunk()? {
            buf.clear();
            buf.extend(chunk.iter().map(|record| record.access()));
            self.drive_chunk(simulator, warmup, &mut position, &buf);
        }
        Ok(())
    }

    /// Runs one `(workload, policy)` cell: generates the trace, simulates,
    /// and returns the report.
    ///
    /// Streams the trace straight out of the generator without
    /// materializing it; see [`ExperimentConfig::run_cached`] for the
    /// shared-trace variant the matrix runners use.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the workload or derived
    /// configuration is invalid.
    pub fn run(&self, spec: &WorkloadSpec, kind: PolicyKind) -> Result<SimulationReport> {
        self.validate_cell(spec)?;
        let mut simulator = self.build_simulator(kind, spec)?;
        self.replay_generator(&mut simulator, spec);
        Ok(simulator.into_report(spec.name.clone()))
    }

    /// Runs one cell against a trace shared through `cache`, so sibling
    /// cells (other policies on the same workload, other sweep points on
    /// the same trace) replay the identical buffer instead of regenerating
    /// it.
    ///
    /// Produces a report byte-identical to [`ExperimentConfig::run`]: the
    /// generator is deterministic, so materializing the trace first changes
    /// only where the accesses come from, not what they are. Falls back to
    /// the streaming path when the trace alone would exceed the cache
    /// budget (full-scale uncapped workloads).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the workload or derived
    /// configuration is invalid.
    pub fn run_cached(
        &self,
        spec: &WorkloadSpec,
        kind: PolicyKind,
        cache: &TraceCache,
    ) -> Result<SimulationReport> {
        self.validate_cell(spec)?;
        let Some(trace) = cache.try_get(spec, self.seed) else {
            // Oversize: replay from (or create) a binary spill stream when
            // the cache has one; otherwise stream out of the generator.
            let mut simulator = self.build_simulator(kind, spec)?;
            match cache.open_stream(spec, self.seed) {
                Some(stream) => self.replay_stream(&mut simulator, spec, stream)?,
                None => self.replay_generator(&mut simulator, spec),
            }
            return Ok(simulator.into_report(spec.name.clone()));
        };
        let mut simulator = self.build_simulator(kind, spec)?;
        let warmup = self.warmup_len(spec).min(trace.len());
        self.drive_slice(&mut simulator, &trace[..warmup]);
        simulator.reset_accounting();
        self.drive_slice(&mut simulator, &trace[warmup..]);
        Ok(simulator.into_report(spec.name.clone()))
    }

    /// [`ExperimentConfig::run`] with a [`WindowedCollector`] attached:
    /// returns the usual report plus per-window [`IntervalRecord`]s and a
    /// metrics snapshot (see [`crate::observe`]).
    ///
    /// The collector is installed *before* warmup so occupancy gauges
    /// track the true resident set, but interval 0 starts at the first
    /// steady-state access — window indices are trace positions, so the
    /// records are identical however the matrix around this cell is
    /// scheduled. A `window` of 0 produces a single whole-run record.
    ///
    /// [`IntervalRecord`]: crate::IntervalRecord
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the workload or derived
    /// configuration is invalid.
    pub fn run_observed(
        &self,
        spec: &WorkloadSpec,
        kind: PolicyKind,
        window: u64,
    ) -> Result<ObservedRun> {
        self.run_cell_instrumented(spec, kind, None, Instrumentation::windowed(window), None, 0)
            .map(InstrumentedRun::into_observed)
    }

    /// [`ExperimentConfig::run_observed`] over a trace shared through
    /// `cache` (the observed matrix path); falls back to the streaming
    /// variant when the trace exceeds the cache budget.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the workload or derived
    /// configuration is invalid.
    pub fn run_observed_cached(
        &self,
        spec: &WorkloadSpec,
        kind: PolicyKind,
        cache: &TraceCache,
        window: u64,
    ) -> Result<ObservedRun> {
        self.run_cell_instrumented(
            spec,
            kind,
            Some(cache),
            Instrumentation::windowed(window),
            None,
            0,
        )
        .map(InstrumentedRun::into_observed)
    }

    /// Runs one cell with any combination of drill-down sinks attached —
    /// the generalization behind [`ExperimentConfig::run_observed`]: a
    /// [`WindowedCollector`] when [`Instrumentation::window`] is set, a
    /// [`PageLedger`] when [`Instrumentation::ledger`] is set, both fanned
    /// out in a fixed order when both are, and **no sink at all** (the
    /// exact hot path of [`ExperimentConfig::run_cached`]) when neither
    /// is — instrumentation that is not requested costs nothing.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the workload or derived
    /// configuration is invalid.
    pub fn run_instrumented(
        &self,
        spec: &WorkloadSpec,
        kind: PolicyKind,
        cache: &TraceCache,
        instrumentation: Instrumentation,
    ) -> Result<InstrumentedRun> {
        self.run_cell_instrumented(spec, kind, Some(cache), instrumentation, None, 0)
    }

    /// The isolated matrix runner's cell driver: instrumentation (in
    /// practice a flight recorder) plus an optional armed
    /// [`PanicTripwire`] from a `cell-panic-at` fault clause.
    fn run_cell_faulted(
        &self,
        spec: &WorkloadSpec,
        kind: PolicyKind,
        cache: &TraceCache,
        instrumentation: Instrumentation,
        panic_at: Option<u64>,
    ) -> Result<InstrumentedRun> {
        self.run_cell_driver(spec, kind, Some(cache), instrumentation, None, 0, panic_at)
    }

    /// The shared cell driver without fault wiring (the common case).
    fn run_cell_instrumented(
        &self,
        spec: &WorkloadSpec,
        kind: PolicyKind,
        cache: Option<&TraceCache>,
        instrumentation: Instrumentation,
        profiler: Option<&SpanProfiler>,
        lane: u64,
    ) -> Result<InstrumentedRun> {
        self.run_cell_driver(spec, kind, cache, instrumentation, profiler, lane, None)
    }

    /// The shared cell driver: optional trace cache (streaming when
    /// `None` or over budget), optional instrumentation sinks, optional
    /// span profiler reporting on lane `lane`, optional armed panic
    /// tripwire (`cell-panic-at` fault injection).
    #[allow(clippy::too_many_arguments)]
    fn run_cell_driver(
        &self,
        spec: &WorkloadSpec,
        kind: PolicyKind,
        cache: Option<&TraceCache>,
        instrumentation: Instrumentation,
        profiler: Option<&SpanProfiler>,
        lane: u64,
        panic_at: Option<u64>,
    ) -> Result<InstrumentedRun> {
        self.validate_cell(spec)?;
        let trace = cache.and_then(|cache| {
            let _span =
                profiler.map(|p| p.span("trace", format!("materialize {}", spec.name), lane));
            cache.try_get(spec, self.seed)
        });
        let mut simulator = self.build_simulator(kind, spec)?;
        if let Some(sink) = self.instrument_sink(spec, kind, instrumentation, &simulator, panic_at)
        {
            simulator.set_event_sink(sink);
        }
        let cell = format!("{}/{}", spec.name, kind.name());
        match trace {
            Some(trace) => {
                let warmup = self.warmup_len(spec).min(trace.len());
                {
                    let _span =
                        profiler.map(|p| p.span("simulate", format!("warmup {cell}"), lane));
                    self.drive_slice(&mut simulator, &trace[..warmup]);
                }
                simulator.reset_accounting();
                {
                    let _span =
                        profiler.map(|p| p.span("simulate", format!("measure {cell}"), lane));
                    self.drive_slice(&mut simulator, &trace[warmup..]);
                }
            }
            None => {
                // Oversize trace: prefer the cache's binary spill stream;
                // warmup and measurement interleave inside one chunked
                // pass, so a single span covers both.
                let stream = cache.and_then(|cache| {
                    let _span =
                        profiler.map(|p| p.span("trace", format!("spill {}", spec.name), lane));
                    cache.open_stream(spec, self.seed)
                });
                let _span = profiler.map(|p| p.span("simulate", format!("measure {cell}"), lane));
                match stream {
                    Some(stream) => self.replay_stream(&mut simulator, spec, stream)?,
                    None => self.replay_generator(&mut simulator, spec),
                }
            }
        }
        let _span = profiler.map(|p| p.span("finish", format!("finish {cell}"), lane));
        self.finish_instrumented(simulator, spec, instrumentation, panic_at)
    }

    /// Assembles the cell's event sink from the requested instrumentation:
    /// `None` when nothing was requested, the bare sink when one was, a
    /// [`FanoutSink`] (tripwire first, then collector, ledger, audit,
    /// flight recorder) when several were. The tripwire goes first so an
    /// injected mid-run panic fires before any later sink records the
    /// dying access; the flight recorder goes last so its ring reflects
    /// everything the other sinks saw.
    fn instrument_sink(
        &self,
        spec: &WorkloadSpec,
        kind: PolicyKind,
        instrumentation: Instrumentation,
        simulator: &HybridSimulator,
        panic_at: Option<u64>,
    ) -> Option<Box<dyn EventSink>> {
        let mut sinks: Vec<Box<dyn EventSink>> = Vec::new();
        if let Some(access) = panic_at {
            sinks.push(Box::new(PanicTripwire::new(
                spec.name.clone(),
                kind.name(),
                access,
            )));
        }
        if let Some(window) = instrumentation.window {
            sinks.push(Box::new(self.collector(spec, kind, window)));
        }
        if let Some(options) = instrumentation.ledger {
            sinks.push(Box::new(PageLedger::new(
                spec.name.clone(),
                kind.name(),
                options,
                self.warmup_len(spec) as u64,
            )));
        }
        if let Some(options) = instrumentation.audit {
            // Capacities come from the built simulator, so single-tier
            // policies (whose counterpart tier has zero capacity) and the
            // paper's 10 %/90 % split are both audited against the sizes
            // the policy actually declared. dram-cache prices migrations
            // as cost-equivalents without journaling residency moves, so
            // its occupancy laws are disabled.
            let audit = AuditSink::new(spec.name.clone(), kind.name(), options)
                .with_capacities(
                    simulator.dram_capacity().value(),
                    simulator.nvm_capacity().value(),
                )
                .with_warmup(self.warmup_len(spec) as u64)
                .with_exclusive_residency(kind != PolicyKind::DramCache);
            sinks.push(Box::new(audit));
        }
        if let Some(options) = instrumentation.flight {
            sinks.push(Box::new(flight_recorder_for(
                spec.name.clone(),
                kind.name(),
                options,
                simulator,
                self.warmup_len(spec) as u64,
            )));
        }
        match sinks.len() {
            0 => None,
            1 => sinks.pop(),
            _ => {
                let mut fanout = FanoutSink::new();
                for child in sinks {
                    fanout.push(child);
                }
                Some(Box::new(fanout))
            }
        }
    }

    /// Builds the per-cell [`WindowedCollector`].
    fn collector(&self, spec: &WorkloadSpec, kind: PolicyKind, window: u64) -> WindowedCollector {
        WindowedCollector::new(
            spec.name.clone(),
            kind.name(),
            window,
            self.warmup_len(spec) as u64,
        )
    }

    /// Recovers the instrumentation sinks from a finished run and
    /// assembles the [`InstrumentedRun`].
    fn finish_instrumented(
        &self,
        mut simulator: HybridSimulator,
        spec: &WorkloadSpec,
        instrumentation: Instrumentation,
        panic_at: Option<u64>,
    ) -> Result<InstrumentedRun> {
        if instrumentation.is_empty() {
            let report = simulator.into_report(spec.name.clone());
            return Ok(InstrumentedRun {
                report,
                records: Vec::new(),
                metrics: MetricsSnapshot::default(),
                ledger: None,
                audit: None,
                flight: None,
            });
        }
        let mut sink = simulator.take_event_sink().ok_or_else(|| {
            Error::invalid_input("instrumented run lost its event sink".to_owned())
        })?;
        let wrong_type = || Error::invalid_input("instrumented run sink has wrong type".to_owned());
        let expected = usize::from(instrumentation.window.is_some())
            + usize::from(instrumentation.ledger.is_some())
            + usize::from(instrumentation.audit.is_some())
            + usize::from(instrumentation.flight.is_some())
            + usize::from(panic_at.is_some());
        // Recover the concrete sinks by type-sniffing the children: a
        // bare sink when one was attached, a fanout's children when
        // several were. Each child's type identifies it — the fanout
        // order (tripwire, collector, ledger, audit, flight) is an
        // implementation detail.
        let children = if expected > 1 {
            sink.as_any_mut()
                .downcast_mut::<FanoutSink>()
                .ok_or_else(wrong_type)?
                .sinks_mut()
        } else {
            std::slice::from_mut(&mut sink)
        };
        let mut collector: Option<&mut WindowedCollector> = None;
        let mut ledger: Option<&mut PageLedger> = None;
        let mut audit: Option<&mut AuditSink> = None;
        let mut recorder: Option<&mut FlightRecorder> = None;
        for child in children {
            let any = child.as_any_mut();
            if any.is::<WindowedCollector>() {
                collector = any.downcast_mut::<WindowedCollector>();
            } else if any.is::<PageLedger>() {
                ledger = any.downcast_mut::<PageLedger>();
            } else if any.is::<AuditSink>() {
                audit = any.downcast_mut::<AuditSink>();
            } else if any.is::<FlightRecorder>() {
                recorder = any.downcast_mut::<FlightRecorder>();
            }
        }
        if collector.is_some() != instrumentation.window.is_some()
            || ledger.is_some() != instrumentation.ledger.is_some()
            || audit.is_some() != instrumentation.audit.is_some()
            || recorder.is_some() != instrumentation.flight.is_some()
        {
            return Err(wrong_type());
        }
        let mut records = Vec::new();
        let mut metrics = MetricsSnapshot::default();
        if let Some(collector) = collector {
            collector.finish();
            // Fold the policy's own window statistics (two-LRU counter
            // resets/promotions) into the cell's metrics when available.
            if let Some(any) = simulator.policy().as_any() {
                if let Some(two_lru) = any.downcast_ref::<TwoLruPolicy>() {
                    two_lru.export_metrics(collector.registry_mut());
                } else if let Some(adaptive) = any.downcast_ref::<AdaptiveTwoLruPolicy>() {
                    adaptive.two_lru().export_metrics(collector.registry_mut());
                }
            }
            records = collector.drain();
            metrics = collector.snapshot();
        }
        let ledger = ledger.map(PageLedger::finish);
        let audit = audit.map(|audit| {
            audit.finish();
            audit.report()
        });
        // The cell completed, so nothing will capture the published
        // probe — capture the black box here. An unclean audit promotes
        // the trigger: the run survived, but a conservation law broke.
        let flight = recorder.map(|recorder| {
            let probe = recorder.probe();
            let _ = flightrec::take_probe();
            let trigger = match &audit {
                Some(report) if !report.clean => "audit-violation",
                _ => "completed",
            };
            probe.capture(trigger, None, 0)
        });
        let report = simulator.into_report(spec.name.clone());
        Ok(InstrumentedRun {
            report,
            records,
            metrics,
            ledger,
            audit,
            flight,
        })
    }

    /// Runs several policies over the *same* trace (same seed), returning
    /// reports in the order given. The trace is materialized once in the
    /// process-wide [`TraceCache`] and shared across the policies (and any
    /// later run touching the same `(spec, seed)`).
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    pub fn compare(
        &self,
        spec: &WorkloadSpec,
        kinds: &[PolicyKind],
    ) -> Result<Vec<SimulationReport>> {
        let cache = TraceCache::global();
        kinds
            .iter()
            .map(|&kind| self.run_cached(spec, kind, cache))
            .collect()
    }
}

impl Default for ExperimentConfig {
    /// Defaults to [`ExperimentConfig::date2016`].
    fn default() -> Self {
        Self::date2016()
    }
}

/// Which drill-down sinks to attach to a cell run. The default attaches
/// nothing — and an empty instrumentation allocates no sink at all, so
/// the simulator hot path is untouched when telemetry is not requested.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Instrumentation {
    /// Attach a [`WindowedCollector`] with this interval width (0 = one
    /// whole-run window). `None` = no interval metrics.
    pub window: Option<u64>,
    /// Attach a [`PageLedger`] with these retention options. `None` = no
    /// ledger.
    pub ledger: Option<LedgerOptions>,
    /// Attach an [`AuditSink`] with these checking options. `None` = no
    /// run-health auditing.
    pub audit: Option<AuditOptions>,
    /// Attach a [`FlightRecorder`] black box with these ring options.
    /// `None` = no flight recording.
    pub flight: Option<FlightOptions>,
}

impl Instrumentation {
    /// Interval metrics only — what [`compare_policies_observed`] uses.
    #[must_use]
    pub fn windowed(window: u64) -> Self {
        Self {
            window: Some(window),
            ..Self::default()
        }
    }

    /// Adds a page ledger with the given retention options.
    #[must_use]
    pub fn with_ledger(mut self, options: LedgerOptions) -> Self {
        self.ledger = Some(options);
        self
    }

    /// Adds a run-health audit with the given checking options. The
    /// audit's capacities, warmup, and residency mode are derived from
    /// the cell (policy capacities, [`ExperimentConfig`] warmup, and
    /// whether the policy journals residency) — only the checking knobs
    /// are configured here.
    #[must_use]
    pub fn with_audit(mut self, options: AuditOptions) -> Self {
        self.audit = Some(options);
        self
    }

    /// Adds a black-box flight recorder with the given ring options.
    #[must_use]
    pub fn with_flight(mut self, options: FlightOptions) -> Self {
        self.flight = Some(options);
        self
    }

    /// True when nothing is attached (no sink will be allocated).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.window.is_none()
            && self.ledger.is_none()
            && self.audit.is_none()
            && self.flight.is_none()
    }
}

/// One cell's outputs under [`Instrumentation`]: always the report;
/// interval records and metrics when a window was requested (empty
/// otherwise); a ledger report when a ledger was requested.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrumentedRun {
    /// The deterministic simulation report.
    pub report: SimulationReport,
    /// Per-window interval records (empty without a window).
    pub records: Vec<IntervalRecord>,
    /// The cell's metrics snapshot (empty without a window).
    pub metrics: MetricsSnapshot,
    /// The page ledger's report, when one was attached.
    pub ledger: Option<LedgerReport>,
    /// The run-health audit's report, when an audit was attached.
    pub audit: Option<AuditReport>,
    /// The black-box flight dump, when a recorder was attached. Trigger
    /// `"completed"` for a clean run, `"audit-violation"` when an
    /// attached audit found the run unclean.
    pub flight: Option<FlightRecord>,
}

impl InstrumentedRun {
    /// Narrows to the windowed-only view, dropping any ledger.
    #[must_use]
    pub fn into_observed(self) -> ObservedRun {
        ObservedRun {
            report: self.report,
            records: self.records,
            metrics: self.metrics,
        }
    }
}

/// Wall-clock and per-cell timings of one parallel matrix run, reported by
/// [`compare_policies_timed`] so harnesses can derive throughput
/// (accesses/second) per policy.
///
/// Timings are measurement artefacts: they vary run to run and are *not*
/// part of the deterministic [`SimulationReport`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixTiming {
    /// End-to-end wall-clock of the whole matrix, in seconds.
    pub wall_seconds: f64,
    /// Number of worker threads the pool actually used.
    pub workers: usize,
    /// `cell_seconds[spec_index][kind_index]`: time one worker spent on
    /// that cell (including any wait for the shared trace to materialize).
    pub cell_seconds: Vec<Vec<f64>>,
    /// `cells_per_worker[worker]`: cells each worker claimed off the
    /// shared queue — the work-stealing balance (sums to the cell count).
    pub cells_per_worker: Vec<u64>,
    /// Most cells that were ever simulating simultaneously (≤ `workers`).
    pub peak_in_flight: usize,
}

/// Runs `kinds` over every workload in `specs` on a work-stealing worker
/// pool, with automatic thread-count selection (see
/// [`compare_policies_threaded`] with `threads = 0`).
///
/// Returns, for each spec in order, the reports in `kinds` order. Output
/// is byte-identical to running every cell serially: cells are
/// independent deterministic simulations and results are assembled by
/// cell index, not completion order.
///
/// # Errors
///
/// Propagates the failing run with the lowest cell index (the same error
/// the serial path would hit first).
///
/// # Examples
///
/// ```
/// use hybridmem_core::{compare_policies, ExperimentConfig, PolicyKind};
/// use hybridmem_trace::parsec;
///
/// let specs: Vec<_> = ["bodytrack", "raytrace"]
///     .iter()
///     .map(|n| parsec::spec(n).map(|s| s.capped(2_000)))
///     .collect::<Result<_, _>>()?;
/// let rows = compare_policies(
///     &specs,
///     &[PolicyKind::TwoLru, PolicyKind::DramOnly],
///     &ExperimentConfig::default(),
/// )?;
/// assert_eq!(rows.len(), 2);
/// assert_eq!(rows[0].len(), 2);
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
pub fn compare_policies(
    specs: &[WorkloadSpec],
    kinds: &[PolicyKind],
    config: &ExperimentConfig,
) -> Result<Vec<Vec<SimulationReport>>> {
    compare_policies_threaded(specs, kinds, config, 0)
}

/// [`compare_policies`] with an explicit worker count.
///
/// `threads = 0` selects `available_parallelism()`; any request is capped
/// at the number of `(workload, policy)` cells so idle workers are never
/// spawned. Each worker pulls the next unclaimed cell off a shared atomic
/// index (work stealing at cell granularity — no static partitioning, so
/// one slow workload cannot strand the rest of the pool) and writes its
/// report into the cell's pre-assigned slot.
///
/// # Errors
///
/// Propagates the failing run with the lowest cell index.
pub fn compare_policies_threaded(
    specs: &[WorkloadSpec],
    kinds: &[PolicyKind],
    config: &ExperimentConfig,
    threads: usize,
) -> Result<Vec<Vec<SimulationReport>>> {
    Ok(compare_policies_timed(specs, kinds, config, threads)?.0)
}

/// [`compare_policies_threaded`], additionally reporting wall-clock and
/// per-cell timings for throughput tracking.
///
/// # Errors
///
/// Propagates the failing run with the lowest cell index.
#[allow(clippy::missing_panics_doc)] // internal invariants only
pub fn compare_policies_timed(
    specs: &[WorkloadSpec],
    kinds: &[PolicyKind],
    config: &ExperimentConfig,
    threads: usize,
) -> Result<(Vec<Vec<SimulationReport>>, MatrixTiming)> {
    let cache = TraceCache::global();
    run_cell_matrix(specs, kinds, threads, |spec, kind, _worker| {
        config.run_cached(spec, kind, cache)
    })
}

/// The observed variant of [`compare_policies_timed`]: every cell runs
/// with a [`WindowedCollector`] of the given `window`, so each
/// [`ObservedRun`] carries its interval records and metrics alongside
/// the report. Like the plain matrix, the per-cell payloads are
/// byte-identical at any thread count; only [`MatrixTiming`] (a
/// measurement artefact) varies.
///
/// # Errors
///
/// Propagates the failing run with the lowest cell index.
pub fn compare_policies_observed(
    specs: &[WorkloadSpec],
    kinds: &[PolicyKind],
    config: &ExperimentConfig,
    threads: usize,
    window: u64,
) -> Result<(Vec<Vec<ObservedRun>>, MatrixTiming)> {
    let (rows, timing) = compare_policies_instrumented(
        specs,
        kinds,
        config,
        threads,
        Instrumentation::windowed(window),
        None,
    )?;
    Ok((
        rows.into_iter()
            .map(|row| {
                row.into_iter()
                    .map(InstrumentedRun::into_observed)
                    .collect()
            })
            .collect(),
        timing,
    ))
}

/// The fully general matrix runner: every cell runs under the given
/// [`Instrumentation`] (interval metrics, page ledger, both, or neither),
/// optionally reporting harness phase timings — trace materialization,
/// warmup, measured run, finish — to a [`SpanProfiler`] with one lane per
/// worker (lane 0 is the coordinator).
///
/// The deterministic outputs ([`InstrumentedRun`]s, including every
/// ledger report) are byte-identical at any thread count; the profiler's
/// spans are wall-clock measurement artefacts, like [`MatrixTiming`],
/// and must never be compared for determinism.
///
/// # Errors
///
/// Propagates the failing run with the lowest cell index.
pub fn compare_policies_instrumented(
    specs: &[WorkloadSpec],
    kinds: &[PolicyKind],
    config: &ExperimentConfig,
    threads: usize,
    instrumentation: Instrumentation,
    profiler: Option<&SpanProfiler>,
) -> Result<(Vec<Vec<InstrumentedRun>>, MatrixTiming)> {
    let cache = TraceCache::global();
    let _matrix_span = profiler.map(|p| {
        p.span(
            "scheduler",
            format!("matrix {}x{}", specs.len(), kinds.len()),
            0,
        )
    });
    run_cell_matrix(specs, kinds, threads, |spec, kind, worker| {
        let lane = worker as u64 + 1;
        let _span = profiler.map(|p| {
            p.span(
                "scheduler",
                format!("cell {}/{}", spec.name, kind.name()),
                lane,
            )
        });
        config.run_cell_instrumented(spec, kind, Some(cache), instrumentation, profiler, lane)
    })
}

/// The shared work-stealing engine behind the matrix runners: runs `run`
/// on every `(spec, kind)` cell across a worker pool and assembles the
/// outcomes by cell index, so output order never depends on scheduling.
/// Every cell executes inside [`run_isolated`] — a panicking cell is
/// retried and, if it keeps dying, quarantined as a
/// [`CellOutcome::Failed`] while every other cell completes normally;
/// the engine itself never fails. Also measures the scheduler —
/// per-cell wall time, how many cells each worker claimed, and the peak
/// number of cells in flight — into the returned [`MatrixTiming`].
#[allow(clippy::missing_panics_doc)] // internal invariants only
fn run_cell_matrix_isolated<T, F>(
    specs: &[WorkloadSpec],
    kinds: &[PolicyKind],
    threads: usize,
    run: F,
) -> (Vec<Vec<CellOutcome<T>>>, MatrixTiming)
where
    T: Send,
    F: Fn(&WorkloadSpec, PolicyKind, usize) -> Result<T> + Sync,
{
    let started = Instant::now(); // xtask:allow(timing) — measures wall clock, never affects results
    let cells = specs.len() * kinds.len();
    if cells == 0 {
        return (
            specs.iter().map(|_| Vec::new()).collect(),
            MatrixTiming {
                wall_seconds: started.elapsed().as_secs_f64(),
                workers: 0,
                cell_seconds: specs.iter().map(|_| Vec::new()).collect(),
                cells_per_worker: Vec::new(),
                peak_in_flight: 0,
            },
        );
    }
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let workers = if threads == 0 { available } else { threads }
        .min(cells)
        .max(1);

    let next_cell = AtomicUsize::new(0);
    let in_flight = AtomicUsize::new(0);
    let peak_in_flight = AtomicUsize::new(0);
    let claimed: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let slots: Vec<Mutex<Option<(CellOutcome<T>, f64)>>> =
        (0..cells).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let worker = |id: usize| loop {
            // xtask:allow(atomic-ordering, why=unique cell claim comes from the atomic RMW itself; no cross-cell ordering needed)
            let index = next_cell.fetch_add(1, Ordering::Relaxed);
            if index >= cells {
                break;
            }
            if let Some(count) = claimed.get(id) {
                // xtask:allow(atomic-ordering, why=per-worker telemetry counter; read only after the scope joins)
                count.fetch_add(1, Ordering::Relaxed);
            }
            // xtask:allow(atomic-ordering, why=in-flight depth telemetry; approximate interleaving is fine)
            let depth = in_flight.fetch_add(1, Ordering::Relaxed) + 1;
            // xtask:allow(atomic-ordering, why=peak-depth telemetry; fetch_max tolerates reordering)
            peak_in_flight.fetch_max(depth, Ordering::Relaxed);
            let spec = &specs[index / kinds.len()];
            let kind = kinds[index % kinds.len()];
            let cell_started = Instant::now(); // xtask:allow(timing) — per-cell wall clock only
                                               // Isolation boundary: a panic inside the cell is caught,
                                               // retried, and at worst quarantined — the worker (and every
                                               // other cell it will claim) survives.
            let outcome = run_isolated(&spec.name, kind.name(), || run(spec, kind, id));
            let elapsed = cell_started.elapsed().as_secs_f64();
            *slots[index].lock().expect("cell slot poisoned") = Some((outcome, elapsed));
            // xtask:allow(atomic-ordering, why=in-flight depth telemetry; approximate interleaving is fine)
            in_flight.fetch_sub(1, Ordering::Relaxed);
        };
        let handles: Vec<_> = (0..workers)
            .map(|id| scope.spawn(move || worker(id)))
            .collect();
        for handle in handles {
            // Worker bodies cannot panic (cells are caught above), so a
            // join error would mean the scheduler itself is broken; any
            // unfilled slots are quarantined below either way.
            let _ = handle.join();
        }
    });

    // Assemble by cell index: output order (and the first-error choice)
    // never depends on which worker finished when.
    let mut rows = Vec::with_capacity(specs.len());
    let mut cell_seconds = Vec::with_capacity(specs.len());
    let mut slots = slots.into_iter();
    for spec in specs {
        let mut row = Vec::with_capacity(kinds.len());
        let mut times = Vec::with_capacity(kinds.len());
        for kind in kinds {
            let slot = slots.next().expect("one slot per cell");
            let (outcome, seconds) = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .unwrap_or_else(|| {
                    (
                        CellOutcome::Failed {
                            error: Error::invalid_input(format!(
                                "cell {}/{} was never completed: its worker thread died",
                                spec.name,
                                kind.name()
                            )),
                            retries: 0,
                            panicked: true,
                            flight: None,
                        },
                        0.0,
                    )
                });
            row.push(outcome);
            times.push(seconds);
        }
        rows.push(row);
        cell_seconds.push(times);
    }
    let timing = MatrixTiming {
        wall_seconds: started.elapsed().as_secs_f64(),
        workers,
        cell_seconds,
        cells_per_worker: claimed
            .iter()
            // xtask:allow(atomic-ordering, why=read after thread::scope join, which already synchronizes)
            .map(|count| count.load(Ordering::Relaxed))
            .collect(),
        // xtask:allow(atomic-ordering, why=read after thread::scope join, which already synchronizes)
        peak_in_flight: peak_in_flight.load(Ordering::Relaxed),
    };
    (rows, timing)
}

/// The fail-fast wrapper over [`run_cell_matrix_isolated`] used by the
/// historical matrix runners: the first quarantined cell in cell-index
/// order fails the whole matrix with its typed error — the same error
/// the serial path would hit first.
fn run_cell_matrix<T, F>(
    specs: &[WorkloadSpec],
    kinds: &[PolicyKind],
    threads: usize,
    run: F,
) -> Result<(Vec<Vec<T>>, MatrixTiming)>
where
    T: Send,
    F: Fn(&WorkloadSpec, PolicyKind, usize) -> Result<T> + Sync,
{
    let (outcomes, timing) = run_cell_matrix_isolated(specs, kinds, threads, run);
    let mut rows = Vec::with_capacity(outcomes.len());
    for row in outcomes {
        rows.push(
            row.into_iter()
                .map(CellOutcome::into_result)
                .collect::<Result<Vec<T>>>()?,
        );
    }
    Ok((rows, timing))
}

/// Builds a [`FlightRecorder`] for a cell about to run on `simulator`
/// and publishes its capture probe to the thread's probe registry (see
/// [`crate::flightrec`]), so an isolation wrapper can dump the black
/// box even after a panic destroys the sink. Capacities come from the
/// built simulator, and counter-window policies get their read-window
/// size recorded so snapshots can report the window position.
#[must_use]
pub fn flight_recorder_for(
    workload: impl Into<String>,
    policy: &str,
    options: FlightOptions,
    simulator: &HybridSimulator,
    warmup: u64,
) -> FlightRecorder {
    let mut recorder = FlightRecorder::new(workload, policy, options)
        .with_warmup(warmup)
        .with_capacities(
            simulator.dram_capacity().value(),
            simulator.nvm_capacity().value(),
        );
    if let Some(any) = simulator.policy().as_any() {
        let config = if let Some(two_lru) = any.downcast_ref::<TwoLruPolicy>() {
            Some(two_lru.config())
        } else {
            any.downcast_ref::<AdaptiveTwoLruPolicy>()
                .map(|adaptive| adaptive.two_lru().config())
        };
        if let Some(config) = config {
            recorder = recorder.with_read_window_pages(config.read_window_pages() as u64);
        }
    }
    flightrec::publish_probe(recorder.probe());
    recorder
}

/// Stable fingerprint of one exact matrix: the workloads, the policy
/// kinds, and the full experiment configuration, hashed over their
/// canonical JSON. A [`RunJournal`] is bound to this value so a journal
/// written for one campaign can never be resumed into a different one.
#[must_use]
pub fn matrix_fingerprint(
    specs: &[WorkloadSpec],
    kinds: &[PolicyKind],
    config: &ExperimentConfig,
) -> u64 {
    let canonical = serde_json::to_string(&(specs, kinds, config)).unwrap_or_default();
    fx_hash_one(&canonical)
}

/// The fault-tolerant matrix runner: every cell runs isolated (panics
/// caught, retried up to [`crate::health::MAX_CELL_RETRIES`] times,
/// then quarantined), an optional [`FaultPlan`] injects scripted
/// per-cell panics, and an optional [`RunJournal`] makes the run
/// resumable — completed cells are appended as they finish and replayed
/// verbatim on the next run instead of being recomputed.
///
/// Unlike [`compare_policies_threaded`], a failing cell does **not**
/// abort the matrix: every other cell completes, and the returned
/// [`MatrixHealthReport`] (`hybridmem-matrix-health-v1`) records
/// exactly which cells were quarantined or retried. Callers decide
/// whether failures are fatal (the CLI's `--strict`).
///
/// The outcome grid and health report carry no wall-clock fields, so
/// they are byte-identical at any thread count; only [`MatrixTiming`]
/// (a measurement artefact) varies.
///
/// When `flight` is set, every freshly simulated cell carries a
/// [`FlightRecorder`] black box: a quarantined cell's last moments are
/// preserved in its [`CellOutcome::Failed`] `flight` field (the raw
/// material for `--flight-out` dumps and `hybridmem postmortem`). A
/// `cell-panic-at` clause in the fault plan additionally arms a
/// [`PanicTripwire`] so the cell dies *mid-simulation* at an exact
/// demand access — with the flight ring guaranteed to stop strictly
/// before the panic site.
pub fn compare_policies_isolated(
    specs: &[WorkloadSpec],
    kinds: &[PolicyKind],
    config: &ExperimentConfig,
    threads: usize,
    fault_plan: Option<&FaultPlan>,
    journal: Option<&RunJournal>,
    flight: Option<FlightOptions>,
) -> (
    Vec<Vec<CellOutcome<SimulationReport>>>,
    MatrixHealthReport,
    MatrixTiming,
) {
    let cache = TraceCache::global();
    let (outcomes, timing) = run_cell_matrix_isolated(specs, kinds, threads, |spec, kind, _| {
        if let Some(plan) = fault_plan {
            plan.fire_cell_panic(&spec.name, kind.name());
        }
        if let Some(journal) = journal {
            if let Some(report) = journal.completed_report(&spec.name, kind.name()) {
                return serde_json::from_value(report).map_err(|e| {
                    Error::invalid_input(format!(
                        "journaled report for {}/{} does not deserialize: {e}",
                        spec.name,
                        kind.name()
                    ))
                });
            }
        }
        let panic_at = fault_plan.and_then(|plan| plan.cell_panic_access(&spec.name, kind.name()));
        let report = if flight.is_some() || panic_at.is_some() {
            let instrumentation = Instrumentation {
                flight,
                ..Instrumentation::default()
            };
            config
                .run_cell_faulted(spec, kind, cache, instrumentation, panic_at)?
                .report
        } else {
            config.run_cached(spec, kind, cache)?
        };
        if let Some(journal) = journal {
            journal.record(&spec.name, kind.name(), &report);
        }
        Ok(report)
    });
    let health = MatrixHealthReport::new(
        specs
            .iter()
            .zip(&outcomes)
            .flat_map(|(spec, row)| {
                kinds
                    .iter()
                    .zip(row)
                    .map(|(kind, outcome)| outcome.health(&spec.name, kind.name()))
            })
            .collect(),
    );
    (outcomes, health, timing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem_trace::{parsec, LocalityParams};

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec::new("test", 200, 20_000, 5_000, LocalityParams::balanced()).unwrap()
    }

    #[test]
    fn memory_sizes_follow_the_paper_ratios() {
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        let (dram, nvm, total) = config.memory_sizes(&spec);
        assert_eq!(total, PageCount::new(150)); // 75% of 200
        assert_eq!(dram, PageCount::new(15)); // 10% of 150
        assert_eq!(nvm, PageCount::new(135));
        assert_eq!(dram + nvm, total);
    }

    #[test]
    fn tiny_workloads_get_at_least_one_page_each() {
        let config = ExperimentConfig::date2016();
        let spec = WorkloadSpec::new("tiny", 2, 10, 0, LocalityParams::balanced()).unwrap();
        let (dram, nvm, _) = config.memory_sizes(&spec);
        assert!(dram.value() >= 1);
        assert!(nvm.value() >= 1);
    }

    #[test]
    fn run_produces_consistent_reports_for_all_policies() {
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let warmup = (spec.total_accesses() as f64 * config.warmup_fraction) as u64;
        for kind in PolicyKind::all() {
            let report = config.run(&spec, kind).unwrap();
            assert_eq!(report.policy, kind.name(), "{kind}");
            assert_eq!(report.counts.requests, spec.total_accesses() - warmup);
            assert_eq!(
                report.counts.hits() + report.counts.faults,
                report.counts.requests
            );
            assert!(report.amat().value() > 0.0);
            assert!(report.appr().value() > 0.0);
        }
    }

    #[test]
    fn same_seed_same_report() {
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        let a = config.run(&spec, PolicyKind::TwoLru).unwrap();
        let b = config.run(&spec, PolicyKind::TwoLru).unwrap();
        assert_eq!(a, b);
        let different = ExperimentConfig { seed: 43, ..config }
            .run(&spec, PolicyKind::TwoLru)
            .unwrap();
        assert_ne!(a, different);
    }

    #[test]
    fn dram_only_has_no_nvm_and_no_migrations() {
        let report = ExperimentConfig::date2016()
            .run(&small_spec(), PolicyKind::DramOnly)
            .unwrap();
        assert_eq!(report.nvm_pages, 0);
        assert_eq!(report.counts.migrations(), 0);
        assert_eq!(report.nvm_writes.total(), 0);
    }

    #[test]
    fn compare_runs_in_order() {
        let config = ExperimentConfig::date2016();
        let reports = config
            .compare(&small_spec(), &[PolicyKind::ClockDwf, PolicyKind::TwoLru])
            .unwrap();
        assert_eq!(reports[0].policy, "clock-dwf");
        assert_eq!(reports[1].policy, "two-lru");
    }

    #[test]
    fn parallel_compare_matches_sequential() {
        let config = ExperimentConfig::date2016();
        let specs = vec![
            small_spec(),
            parsec::spec("bodytrack").unwrap().capped(3_000),
        ];
        let kinds = [PolicyKind::TwoLru, PolicyKind::DramOnly];
        let parallel = compare_policies(&specs, &kinds, &config).unwrap();
        for (spec, row) in specs.iter().zip(&parallel) {
            let sequential = config.compare(spec, &kinds).unwrap();
            assert_eq!(*row, sequential);
        }
    }

    #[test]
    fn cached_run_matches_streaming_run() {
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        let cache = TraceCache::new(64 << 20);
        for kind in PolicyKind::all() {
            let streamed = config.run(&spec, kind).unwrap();
            let cached = config.run_cached(&spec, kind, &cache).unwrap();
            assert_eq!(streamed, cached, "{kind}");
        }
        assert_eq!(cache.len(), 1, "seven policies shared one trace");
    }

    #[test]
    fn oversized_trace_falls_back_to_streaming() {
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        let tiny_cache = TraceCache::new(16);
        let report = config
            .run_cached(&spec, PolicyKind::TwoLru, &tiny_cache)
            .unwrap();
        assert!(tiny_cache.is_empty());
        assert_eq!(report, config.run(&spec, PolicyKind::TwoLru).unwrap());
    }

    #[test]
    fn serial_and_batched_replay_modes_are_byte_identical() {
        let batched = ExperimentConfig::date2016();
        assert_eq!(
            batched.replay,
            ReplayMode::Batched,
            "fast path is the default"
        );
        let serial = ExperimentConfig {
            replay: ReplayMode::Serial,
            ..batched
        };
        let spec = small_spec();
        let cache = TraceCache::new(64 << 20);
        for kind in PolicyKind::all() {
            let fast = batched.run_cached(&spec, kind, &cache).unwrap();
            let oracle = serial.run_cached(&spec, kind, &cache).unwrap();
            assert_eq!(fast, oracle, "{kind}");
        }
    }

    #[test]
    fn oversized_cell_replays_from_a_spill_stream() {
        let dir =
            std::env::temp_dir().join(format!("hybridmem-exp-spill-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A 16-byte budget makes every trace oversize, forcing the
        // spill-stream path on each run.
        let cache = TraceCache::with_spill_dir(16, &dir);
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        let first = config
            .run_cached(&spec, PolicyKind::TwoLru, &cache)
            .unwrap();
        assert_eq!(first, config.run(&spec, PolicyKind::TwoLru).unwrap());
        assert_eq!(cache.stats().spill_misses, 1, "first run wrote the spill");
        let second = config
            .run_cached(&spec, PolicyKind::TwoLru, &cache)
            .unwrap();
        assert_eq!(first, second);
        assert!(cache.is_empty(), "streaming never materializes");
        assert_eq!(cache.stats().spill_hits, 1, "second run replayed the file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn threaded_compare_is_byte_identical_to_serial() {
        // The ISSUE-level determinism guarantee: a multi-threaded matrix
        // run serializes to exactly the bytes the serial path produces.
        let config = ExperimentConfig::date2016();
        let specs = vec![
            small_spec(),
            parsec::spec("bodytrack").unwrap().capped(3_000),
            parsec::spec("raytrace").unwrap().capped(2_500),
        ];
        let kinds = PolicyKind::all();
        let serial: Vec<Vec<SimulationReport>> = specs
            .iter()
            .map(|spec| config.compare(spec, &kinds).unwrap())
            .collect();
        let threaded = compare_policies_threaded(&specs, &kinds, &config, 8).unwrap();
        let serial_json = serde_json::to_string(&serial).unwrap();
        let threaded_json = serde_json::to_string(&threaded).unwrap();
        assert_eq!(serial_json, threaded_json);
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let config = ExperimentConfig::date2016();
        let specs = vec![
            small_spec(),
            parsec::spec("bodytrack").unwrap().capped(2_000),
        ];
        let kinds = [
            PolicyKind::TwoLru,
            PolicyKind::ClockDwf,
            PolicyKind::DramOnly,
        ];
        let one = compare_policies_threaded(&specs, &kinds, &config, 1).unwrap();
        for threads in [2, 3, 8, 64] {
            let many = compare_policies_threaded(&specs, &kinds, &config, threads).unwrap();
            assert_eq!(one, many, "threads={threads}");
        }
    }

    #[test]
    fn timed_compare_reports_sane_timings() {
        let config = ExperimentConfig::date2016();
        let specs = vec![small_spec()];
        let kinds = [PolicyKind::TwoLru, PolicyKind::DramOnly];
        let (rows, timing) = compare_policies_timed(&specs, &kinds, &config, 2).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(timing.cell_seconds.len(), 1);
        assert_eq!(timing.cell_seconds[0].len(), 2);
        assert!(timing.workers >= 1 && timing.workers <= 2);
        assert!(timing.wall_seconds >= 0.0);
        assert!(timing.cell_seconds[0].iter().all(|&s| s >= 0.0));
        assert_eq!(timing.cells_per_worker.len(), timing.workers);
        assert_eq!(
            timing.cells_per_worker.iter().sum::<u64>(),
            2,
            "every cell is claimed exactly once"
        );
        assert!(timing.peak_in_flight >= 1 && timing.peak_in_flight <= timing.workers);
    }

    #[test]
    fn empty_matrix_is_well_formed() {
        let config = ExperimentConfig::date2016();
        let rows = compare_policies_threaded(&[small_spec()], &[], &config, 4).unwrap();
        assert_eq!(rows, vec![Vec::new()]);
        let none = compare_policies_threaded(&[], &PolicyKind::all(), &config, 4).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn first_error_matches_serial_order() {
        let config = ExperimentConfig {
            warmup_fraction: 2.0, // invalid: every cell fails
            ..ExperimentConfig::date2016()
        };
        let specs = vec![
            small_spec(),
            parsec::spec("bodytrack").unwrap().capped(1_000),
        ];
        let kinds = [PolicyKind::TwoLru, PolicyKind::DramOnly];
        let err = compare_policies_threaded(&specs, &kinds, &config, 4).unwrap_err();
        let serial_err = config.run(&specs[0], kinds[0]).unwrap_err();
        assert_eq!(err.to_string(), serial_err.to_string());
    }

    #[test]
    fn isolated_matrix_quarantines_a_panicking_cell_and_completes_the_rest() {
        let config = ExperimentConfig::date2016();
        let specs = vec![
            small_spec(),
            parsec::spec("bodytrack").unwrap().capped(1_000),
        ];
        let kinds = [PolicyKind::TwoLru, PolicyKind::DramOnly];
        // K far past the retry budget: the cell must be quarantined.
        let plan = FaultPlan::parse("cell-panic@test/two-lru:100").unwrap();
        let (outcomes, health, _) =
            compare_policies_isolated(&specs, &kinds, &config, 4, Some(&plan), None, None);

        let clean = compare_policies_threaded(&specs, &kinds, &config, 1).unwrap();
        match &outcomes[0][0] {
            CellOutcome::Failed {
                error,
                retries,
                panicked,
                ..
            } => {
                assert!(error.to_string().contains("injected fault"), "{error}");
                assert_eq!(*retries, crate::health::MAX_CELL_RETRIES);
                assert!(panicked);
            }
            CellOutcome::Ok { .. } => panic!("scripted cell must be quarantined"),
        }
        // Every other cell completed with exactly the clean-run report.
        assert_eq!(outcomes[0][1].ok(), Some(&clean[0][1]));
        assert_eq!(outcomes[1][0].ok(), Some(&clean[1][0]));
        assert_eq!(outcomes[1][1].ok(), Some(&clean[1][1]));

        assert_eq!(health.schema, crate::health::MATRIX_HEALTH_SCHEMA);
        assert_eq!(health.total_cells, 4);
        assert_eq!(health.failed_cells, 1);
        assert!(!health.clean);
        assert_eq!(health.cells[0].workload, "test");
        assert_eq!(health.cells[0].policy, "two-lru");
        assert!(health.cells[0]
            .error
            .as_deref()
            .is_some_and(|e| e.contains("injected fault")));
    }

    #[test]
    fn scripted_panics_within_the_retry_budget_recover() {
        let config = ExperimentConfig::date2016();
        let specs = vec![small_spec()];
        let kinds = [PolicyKind::TwoLru, PolicyKind::DramOnly];
        let plan = FaultPlan::parse(&format!(
            "cell-panic@test/two-lru:{}",
            crate::health::MAX_CELL_RETRIES
        ))
        .unwrap();
        let (outcomes, health, _) =
            compare_policies_isolated(&specs, &kinds, &config, 2, Some(&plan), None, None);
        let clean = compare_policies_threaded(&specs, &kinds, &config, 1).unwrap();
        match &outcomes[0][0] {
            CellOutcome::Ok { value, retries } => {
                assert_eq!(value, &clean[0][0], "recovered cell is byte-identical");
                assert_eq!(*retries, crate::health::MAX_CELL_RETRIES);
            }
            CellOutcome::Failed { error, .. } => panic!("cell must recover: {error}"),
        }
        assert_eq!(health.failed_cells, 0);
        assert_eq!(health.retried_cells, 1);
        assert!(!health.clean, "retries are visible in the report");
    }

    #[test]
    fn interrupted_then_resumed_matrix_is_byte_identical_to_uninterrupted() {
        let config = ExperimentConfig::date2016();
        let specs = vec![
            small_spec(),
            parsec::spec("bodytrack").unwrap().capped(1_000),
        ];
        let kinds = [PolicyKind::TwoLru, PolicyKind::DramOnly];
        let fingerprint = matrix_fingerprint(&specs, &kinds, &config);
        let journal_path = std::env::temp_dir().join(format!(
            "hybridmem-resume-test-{}.hmjournal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&journal_path);

        // The oracle: one uninterrupted run.
        let (clean, _) = compare_policies_timed(&specs, &kinds, &config, 2).unwrap();
        let clean_json = serde_json::to_string(&clean).unwrap();

        // The "killed" run: one cell dies past its retry budget, the
        // other three complete and land in the journal.
        let plan = FaultPlan::parse("cell-panic@test/two-lru:100").unwrap();
        let journal = RunJournal::open(&journal_path, fingerprint).unwrap();
        let (_, health, _) = compare_policies_isolated(
            &specs,
            &kinds,
            &config,
            2,
            Some(&plan),
            Some(&journal),
            None,
        );
        assert_eq!(health.failed_cells, 1);
        assert_eq!(journal.len(), 3, "completed cells were journaled");
        drop(journal);

        // The resumed run: no faults, journal replays the three
        // completed cells, only the quarantined one is recomputed.
        let journal = RunJournal::open(&journal_path, fingerprint).unwrap();
        let (outcomes, health, _) =
            compare_policies_isolated(&specs, &kinds, &config, 2, None, Some(&journal), None);
        assert_eq!(health.failed_cells, 0);
        let resumed: Vec<Vec<SimulationReport>> = outcomes
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|outcome| outcome.into_result().unwrap())
                    .collect()
            })
            .collect();
        let resumed_json = serde_json::to_string(&resumed).unwrap();
        assert_eq!(resumed_json, clean_json, "resumed ≡ uninterrupted");
        let _ = std::fs::remove_file(&journal_path);
    }

    #[test]
    fn matrix_fingerprint_pins_specs_kinds_and_config() {
        let config = ExperimentConfig::date2016();
        let specs = vec![small_spec()];
        let kinds = [PolicyKind::TwoLru];
        let base = matrix_fingerprint(&specs, &kinds, &config);
        assert_eq!(
            base,
            matrix_fingerprint(&specs, &kinds, &config),
            "stable across calls"
        );
        assert_ne!(
            base,
            matrix_fingerprint(&specs, &[PolicyKind::DramOnly], &config)
        );
        let other = ExperimentConfig { seed: 7, ..config };
        assert_ne!(base, matrix_fingerprint(&specs, &kinds, &other));
    }

    #[test]
    fn observed_run_report_matches_plain_run() {
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        let observed = config
            .run_observed(&spec, PolicyKind::TwoLru, 1_000)
            .unwrap();
        let plain = config.run(&spec, PolicyKind::TwoLru).unwrap();
        assert_eq!(observed.report, plain, "observation must not perturb");
        let windowed_accesses: u64 = observed.records.iter().map(|r| r.accesses).sum();
        assert_eq!(windowed_accesses, plain.counts.requests);
        assert_eq!(
            observed.metrics.counters["sim.accesses"],
            plain.counts.requests
        );
        assert!(
            observed
                .metrics
                .counters
                .contains_key("two_lru.read_promotions")
                && observed
                    .metrics
                    .gauges
                    .contains_key("two_lru.tracked_pages"),
            "two-LRU window stats are folded into the cell metrics"
        );
    }

    #[test]
    fn observed_cached_matches_observed_streaming() {
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        let cache = TraceCache::new(64 << 20);
        let streamed = config
            .run_observed(&spec, PolicyKind::ClockDwf, 500)
            .unwrap();
        let cached = config
            .run_observed_cached(&spec, PolicyKind::ClockDwf, &cache, 500)
            .unwrap();
        assert_eq!(streamed.report, cached.report);
        assert_eq!(streamed.records, cached.records);
        assert_eq!(streamed.metrics, cached.metrics);
    }

    #[test]
    fn observed_matrix_reports_match_plain_matrix() {
        let config = ExperimentConfig::date2016();
        let specs = vec![small_spec()];
        let kinds = [PolicyKind::TwoLru, PolicyKind::DramOnly];
        let (observed, _) = compare_policies_observed(&specs, &kinds, &config, 2, 2_000).unwrap();
        let plain = compare_policies_threaded(&specs, &kinds, &config, 2).unwrap();
        for (row_observed, row_plain) in observed.iter().zip(&plain) {
            for (cell, report) in row_observed.iter().zip(row_plain) {
                assert_eq!(&cell.report, report);
                assert!(!cell.records.is_empty());
            }
        }
    }

    #[test]
    fn policy_kind_names_are_stable() {
        assert_eq!(PolicyKind::TwoLru.to_string(), "two-lru");
        assert_eq!(PolicyKind::all().len(), 7);
    }

    #[test]
    fn empty_instrumentation_matches_plain_run_and_carries_nothing() {
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        let cache = TraceCache::new(64 << 20);
        let run = config
            .run_instrumented(
                &spec,
                PolicyKind::TwoLru,
                &cache,
                Instrumentation::default(),
            )
            .unwrap();
        let plain = config
            .run_cached(&spec, PolicyKind::TwoLru, &cache)
            .unwrap();
        assert_eq!(run.report, plain);
        assert!(run.records.is_empty());
        assert!(run.metrics.counters.is_empty());
        assert!(run.ledger.is_none());
        assert!(run.flight.is_none());
    }

    #[test]
    fn flight_instrumentation_does_not_perturb_and_captures_the_black_box() {
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        let cache = TraceCache::new(64 << 20);
        let instrumentation =
            Instrumentation::default().with_flight(crate::FlightOptions::with_events(64));
        let run = config
            .run_instrumented(&spec, PolicyKind::TwoLru, &cache, instrumentation)
            .unwrap();
        let plain = config
            .run_cached(&spec, PolicyKind::TwoLru, &cache)
            .unwrap();
        assert_eq!(run.report, plain, "the recorder must not perturb results");
        let flight = run.flight.expect("a flight record was requested");
        assert_eq!(flight.trigger, "completed");
        assert_eq!(flight.workload, spec.name);
        assert_eq!(flight.policy, "two-lru");
        assert_eq!(
            flight.accesses,
            spec.total_accesses(),
            "warmup demand accesses are recorded too"
        );
        assert_eq!(flight.final_access, spec.total_accesses() - 1);
        assert_eq!(flight.events.len(), 64, "the ring is full on a long run");
        assert!(flight.events_dropped > 0);
        assert!(
            flight.two_lru_read_window_pages.is_some(),
            "counter-window policies report their window size"
        );
        assert!(
            crate::flightrec::take_probe().is_none(),
            "a completed instrumented run must not leak its probe"
        );
        // The recorder's own occupancy reconstruction must agree with
        // the engine's accounting at the end of the run.
        assert!(flight.dram_resident <= flight.dram_capacity);
        assert!(flight.nvm_resident <= flight.nvm_capacity);
    }

    #[test]
    fn cell_panic_at_quarantines_with_a_flight_dump_preceding_the_panic() {
        let config = ExperimentConfig::date2016();
        let specs = vec![small_spec()];
        let kinds = [PolicyKind::TwoLru, PolicyKind::DramOnly];
        let plan = FaultPlan::parse("cell-panic-at@test/two-lru:500").unwrap();
        let options = crate::FlightOptions::with_events(32);

        let flight_of = |threads: usize| {
            let (outcomes, health, _) = compare_policies_isolated(
                &specs,
                &kinds,
                &config,
                threads,
                Some(&plan),
                None,
                Some(options),
            );
            assert_eq!(health.failed_cells, 1);
            let mut rows = outcomes.into_iter();
            let mut row = rows.next().expect("one workload row");
            match row.remove(0) {
                CellOutcome::Failed {
                    panicked, flight, ..
                } => {
                    assert!(panicked);
                    *flight.expect("the flight dump must be captured")
                }
                CellOutcome::Ok { .. } => panic!("scripted cell must be quarantined"),
            }
        };

        let flight = flight_of(2);
        assert_eq!(flight.trigger, "panic");
        assert_eq!(
            flight.accesses, 500,
            "demand accesses 0..=499 were recorded"
        );
        assert_eq!(
            flight.final_access, 499,
            "the last recorded event strictly precedes the panic site"
        );
        assert!(flight
            .error
            .as_deref()
            .is_some_and(|e| e.contains("panicked at access 500")));
        assert_eq!(flight.retries, crate::health::MAX_CELL_RETRIES);

        // The acceptance criterion: the dump is identical at any
        // thread count.
        let serial = flight_of(1);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&flight).unwrap(),
            "flight dumps are byte-identical across thread counts"
        );
    }

    #[test]
    fn ledger_instrumentation_does_not_perturb_and_attributes_promotions() {
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        let cache = TraceCache::new(64 << 20);
        let instrumentation =
            Instrumentation::default().with_ledger(crate::LedgerOptions::default());
        let run = config
            .run_instrumented(&spec, PolicyKind::TwoLru, &cache, instrumentation)
            .unwrap();
        let plain = config.run(&spec, PolicyKind::TwoLru).unwrap();
        assert_eq!(run.report, plain, "the ledger must not perturb results");
        let ledger = run.ledger.expect("a ledger report was requested");
        assert_eq!(ledger.workload, spec.name);
        assert_eq!(ledger.policy, "two-lru");
        assert_eq!(ledger.accesses, spec.total_accesses());
        // Every two-LRU promotion is probe-attributed — none slip through
        // as unattributed.
        assert_eq!(ledger.summary.promotions_unattributed, 0);
        assert!(
            ledger.summary.promotions_read + ledger.summary.promotions_write
                >= plain.counts.migrations_to_dram,
            "ledger sees warmup promotions too"
        );
    }

    #[test]
    fn full_instrumentation_combines_collector_and_ledger() {
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        let cache = TraceCache::new(64 << 20);
        let instrumentation =
            Instrumentation::windowed(1_000).with_ledger(crate::LedgerOptions::default());
        let both = config
            .run_instrumented(&spec, PolicyKind::TwoLru, &cache, instrumentation)
            .unwrap();
        let observed = config
            .run_observed(&spec, PolicyKind::TwoLru, 1_000)
            .unwrap();
        assert_eq!(both.report, observed.report);
        assert_eq!(both.records, observed.records);
        assert_eq!(both.metrics, observed.metrics);
        let ledger_only = config
            .run_instrumented(
                &spec,
                PolicyKind::TwoLru,
                &cache,
                Instrumentation::default().with_ledger(crate::LedgerOptions::default()),
            )
            .unwrap();
        assert_eq!(
            both.ledger, ledger_only.ledger,
            "the ledger is independent of the collector riding along"
        );
    }

    #[test]
    fn instrumented_matrix_is_thread_count_invariant_with_profiler() {
        let config = ExperimentConfig::date2016();
        let specs = vec![small_spec()];
        let kinds = [PolicyKind::TwoLru, PolicyKind::ClockDwf];
        let instrumentation =
            Instrumentation::windowed(2_000).with_ledger(crate::LedgerOptions::default());
        let (serial, _) =
            compare_policies_instrumented(&specs, &kinds, &config, 1, instrumentation, None)
                .unwrap();
        let profiler = SpanProfiler::new();
        let (parallel, _) = compare_policies_instrumented(
            &specs,
            &kinds,
            &config,
            4,
            instrumentation,
            Some(&profiler),
        )
        .unwrap();
        assert_eq!(serial, parallel);
        let records = profiler.records();
        assert!(
            records.iter().any(|r| r.cat == "scheduler"),
            "matrix and cell spans recorded"
        );
        assert!(records.iter().any(|r| r.cat == "simulate"));
    }

    #[test]
    fn audited_paper_matrix_is_clean_at_any_thread_count() {
        // ISSUE 8 acceptance: every cell of the paper matrix passes the
        // run-health audit with zero violations, and the verdict is
        // identical whether the matrix ran serial or parallel.
        let config = ExperimentConfig::date2016();
        let specs = vec![
            small_spec(),
            parsec::spec("bodytrack").unwrap().capped(3_000),
            parsec::spec("canneal").unwrap().capped(2_500),
        ];
        let kinds = PolicyKind::all();
        let instrumentation = Instrumentation::default().with_audit(AuditOptions::default());
        for threads in [1, 4] {
            let (rows, _) = compare_policies_instrumented(
                &specs,
                &kinds,
                &config,
                threads,
                instrumentation,
                None,
            )
            .unwrap();
            for (spec, row) in specs.iter().zip(&rows) {
                for (kind, cell) in kinds.iter().zip(row) {
                    let audit = cell
                        .audit
                        .as_ref()
                        .expect("an audit report was requested for every cell");
                    assert_eq!(audit.workload, spec.name, "threads={threads}");
                    assert_eq!(audit.policy, kind.name(), "threads={threads}");
                    assert_eq!(audit.accesses, spec.total_accesses(), "threads={threads}");
                    assert!(
                        audit.clean && audit.violations.is_empty(),
                        "threads={threads} {spec_name}/{kind}: {violations:?}",
                        spec_name = spec.name,
                        violations = audit.violations
                    );
                }
            }
        }
    }

    #[test]
    fn audit_instrumentation_does_not_perturb_reports() {
        let config = ExperimentConfig::date2016();
        let spec = small_spec();
        let cache = TraceCache::new(64 << 20);
        let audited = config
            .run_instrumented(
                &spec,
                PolicyKind::TwoLru,
                &cache,
                Instrumentation::default().with_audit(AuditOptions::default()),
            )
            .unwrap();
        let plain = config
            .run_cached(&spec, PolicyKind::TwoLru, &cache)
            .unwrap();
        assert_eq!(audited.report, plain, "the audit must not perturb results");
        assert!(audited.records.is_empty(), "no window was requested");
        assert!(audited.ledger.is_none(), "no ledger was requested");
        let report = audited.audit.expect("an audit report was requested");
        assert!(report.clean, "{:?}", report.violations);
        assert_eq!(report.faults, plain.counts.faults);
    }
}
