//! Parameter-sweep helpers: programmatic access to the ablation studies
//! (`abl_thresholds`, `abl_window`, `abl_dram_ratio` build on these).
//!
//! Sweep points vary only the policy configuration, never the trace, so
//! every point replays the one trace materialized in the process-wide
//! [`TraceCache`] instead of regenerating it per point.

use hybridmem_trace::WorkloadSpec;
use hybridmem_types::Result;
use serde::{Deserialize, Serialize};

use crate::{ExperimentConfig, PolicyKind, SimulationReport, TraceCache};

/// One point of a sweep: the varied configuration plus the paired
/// `(proposed, baseline)` reports it produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Human-readable description of the varied parameter, e.g.
    /// `"thresholds=(4,8)"`.
    pub parameter: String,
    /// Report of the policy under study.
    pub subject: SimulationReport,
    /// Report of the normalization baseline on the same trace.
    pub baseline: SimulationReport,
}

impl SweepPoint {
    /// Total-energy ratio `subject / baseline`.
    #[must_use]
    pub fn power_ratio(&self) -> f64 {
        self.subject.energy_normalized_to(&self.baseline)
    }

    /// AMAT ratio `subject / baseline`.
    #[must_use]
    pub fn amat_ratio(&self) -> f64 {
        self.subject.amat_normalized_to(&self.baseline)
    }

    /// Migrations per thousand requests of the subject policy.
    #[must_use]
    pub fn migrations_per_kreq(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.subject.counts.migrations() as f64 / self.subject.counts.requests.max(1) as f64
                * 1000.0
        }
    }
}

/// Sweeps the proposed scheme's promotion thresholds over one workload,
/// normalizing against DRAM-only (Ablation A1).
///
/// # Errors
///
/// Propagates the first failing simulation.
///
/// # Examples
///
/// ```
/// use hybridmem_core::{sweep_thresholds, ExperimentConfig};
/// use hybridmem_trace::parsec;
///
/// let spec = parsec::spec("bodytrack")?.capped(20_000);
/// let points = sweep_thresholds(
///     &spec,
///     &[(1, 2), (8, 16)],
///     &ExperimentConfig::default(),
/// )?;
/// assert_eq!(points.len(), 2);
/// // Eager promotion (1,2) migrates more than conservative (8,16).
/// assert!(points[0].migrations_per_kreq() >= points[1].migrations_per_kreq());
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
pub fn sweep_thresholds(
    spec: &WorkloadSpec,
    thresholds: &[(u32, u32)],
    base: &ExperimentConfig,
) -> Result<Vec<SweepPoint>> {
    thresholds
        .iter()
        .map(|&(read_threshold, write_threshold)| {
            let config = ExperimentConfig {
                read_threshold,
                write_threshold,
                ..*base
            };
            let subject = config.run_cached(spec, PolicyKind::TwoLru, TraceCache::global())?;
            let baseline = config.run_cached(spec, PolicyKind::DramOnly, TraceCache::global())?;
            Ok(SweepPoint {
                parameter: format!("thresholds=({read_threshold},{write_threshold})"),
                subject,
                baseline,
            })
        })
        .collect()
}

/// Sweeps the counter-window fractions (`readperc`, `writeperc`) over one
/// workload (Ablation A2).
///
/// # Errors
///
/// Propagates the first failing simulation.
pub fn sweep_windows(
    spec: &WorkloadSpec,
    windows: &[(f64, f64)],
    base: &ExperimentConfig,
) -> Result<Vec<SweepPoint>> {
    windows
        .iter()
        .map(|&(read_window, write_window)| {
            let config = ExperimentConfig {
                read_window,
                write_window,
                ..*base
            };
            let subject = config.run_cached(spec, PolicyKind::TwoLru, TraceCache::global())?;
            let baseline = config.run_cached(spec, PolicyKind::DramOnly, TraceCache::global())?;
            Ok(SweepPoint {
                parameter: format!("windows=({read_window:.2},{write_window:.2})"),
                subject,
                baseline,
            })
        })
        .collect()
}

/// Sweeps the DRAM share of the hybrid memory (Ablation A3).
///
/// # Errors
///
/// Propagates the first failing simulation.
pub fn sweep_dram_fractions(
    spec: &WorkloadSpec,
    fractions: &[f64],
    base: &ExperimentConfig,
) -> Result<Vec<SweepPoint>> {
    fractions
        .iter()
        .map(|&dram_fraction| {
            let config = ExperimentConfig {
                dram_fraction,
                ..*base
            };
            let subject = config.run_cached(spec, PolicyKind::TwoLru, TraceCache::global())?;
            let baseline = config.run_cached(spec, PolicyKind::DramOnly, TraceCache::global())?;
            Ok(SweepPoint {
                parameter: format!("dram_fraction={dram_fraction:.2}"),
                subject,
                baseline,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem_trace::parsec;

    fn spec() -> WorkloadSpec {
        parsec::spec("bodytrack").unwrap().capped(15_000)
    }

    #[test]
    fn threshold_sweep_orders_migrations() {
        let points = sweep_thresholds(
            &spec(),
            &[(1, 1), (2, 4), (16, 32)],
            &ExperimentConfig::default(),
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        assert!(points[0].parameter.contains("(1,1)"));
        // Migration volume is monotone non-increasing in the thresholds.
        assert!(points[0].migrations_per_kreq() >= points[1].migrations_per_kreq());
        assert!(points[1].migrations_per_kreq() >= points[2].migrations_per_kreq());
    }

    #[test]
    fn dram_fraction_sweep_scales_static_power() {
        let points =
            sweep_dram_fractions(&spec(), &[0.05, 0.5], &ExperimentConfig::default()).unwrap();
        // More DRAM ⇒ more static energy for the hybrid subject.
        assert!(points[1].subject.energy.static_energy > points[0].subject.energy.static_energy);
        // The DRAM-only baseline is unaffected by the split.
        assert_eq!(
            points[0].baseline.energy.static_energy,
            points[1].baseline.energy.static_energy
        );
    }

    #[test]
    fn window_sweep_runs_and_labels() {
        let points = sweep_windows(&spec(), &[(0.05, 0.15)], &ExperimentConfig::default()).unwrap();
        assert_eq!(points.len(), 1);
        assert!(points[0].parameter.contains("0.05"));
        assert!(points[0].power_ratio() > 0.0);
        assert!(points[0].amat_ratio() > 0.0);
    }
}
