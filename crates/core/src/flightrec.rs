//! Black-box flight recorder: the last moments of a cell, always on,
//! bounded, and cheap enough to ride every instrumented run.
//!
//! PR 9 made long campaigns survivable — a panicking cell is retried
//! and quarantined instead of killing the matrix — but the
//! `hybridmem-matrix-health-v1` report records only the *outcome*.
//! Diagnosing a quarantine today means re-running with four separate
//! flags and hand-joining JSONL streams. The [`FlightRecorder`] closes
//! that gap: an [`EventSink`] that keeps a ring buffer of the last N
//! [`SimEvent`]s plus periodic state snapshots (per-tier occupancy,
//! two-LRU window position, cumulative event counts, access index),
//! and can be asked — *after* the cell died — for a versioned
//! [`FlightRecord`] describing exactly what the engine was doing when
//! it went down.
//!
//! # Surviving the panic
//!
//! A panicking cell unwinds its simulator, and the simulator owns the
//! event sink — so the recorder's state cannot live inside the sink
//! alone. The state sits behind an `Arc<Mutex<_>>`: the sink holds one
//! handle, and a [`FlightProbe`] (a second handle) is published to a
//! thread-local registry at attach time via [`publish_probe`]. The
//! isolation wrapper ([`run_isolated`](crate::health::run_isolated))
//! clears the registry before each attempt and collects the probe
//! after `catch_unwind`, so the captured record always belongs to the
//! attempt that actually failed — never to a stale sibling cell that
//! ran earlier on the same worker thread.
//!
//! # Determinism
//!
//! Everything in a [`FlightRecord`] is access-index-based: event
//! indices, snapshot cadence, occupancy. No wall-clock, no thread ids,
//! and no global [`TraceCache`](crate::TraceCache) statistics (those
//! are scheduling-dependent — which cell materialized a shared trace
//! first varies with the thread count, so they are deliberately
//! excluded). The same failure therefore dumps byte-identical
//! artifacts at any `--threads N`, which CI pins.
//!
//! # The tripwire
//!
//! The chaos harness needs a panic that fires *mid-simulation* at an
//! exact access — `cell-panic@…` fires before the cell starts, so its
//! flight ring would be empty. [`PanicTripwire`] is an [`EventSink`]
//! that counts demand events and panics when the event that would
//! become the scheduled 0-based index arrives, *before* any later sink
//! in the fanout records it — so the flight ring's newest event always
//! precedes the panic site (the `cell-panic-at@…` fault clause).

use std::cell::RefCell;
use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};

use hybridmem_policy::PolicyAction;
use hybridmem_types::MemoryKind;
use serde::{Deserialize, Serialize};

use crate::{EventSink, SimEvent};

/// Schema identifier of the flight-recorder JSON artifact.
pub const FLIGHT_SCHEMA: &str = "hybridmem-flight-v1";

/// User-facing knobs of a [`FlightRecorder`] — the part that travels
/// inside [`Instrumentation`](crate::Instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightOptions {
    /// Events retained in the ring (a value of 0 is clamped to 1).
    pub events: usize,
    /// Demand accesses between state snapshots (0 disables snapshots).
    pub snapshot_every: u64,
    /// Snapshots retained in their own ring.
    pub snapshots: usize,
}

impl Default for FlightOptions {
    fn default() -> Self {
        Self {
            events: 256,
            snapshot_every: 4096,
            snapshots: 64,
        }
    }
}

impl FlightOptions {
    /// Default options with an explicit event-ring size.
    #[must_use]
    pub fn with_events(events: usize) -> Self {
        Self {
            events,
            ..Self::default()
        }
    }
}

/// One retained simulation event, tagged with the 0-based demand-access
/// index it belongs to (actions and probes trail their demand event and
/// carry its index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// 0-based demand-access index the event is attributed to.
    pub access: u64,
    /// What happened.
    pub event: FlightEventKind,
}

/// The observable event classes a flight ring retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FlightEventKind {
    /// A demand request was served by a memory module.
    Served {
        /// Page requested.
        page: u64,
        /// True for a store.
        write: bool,
        /// Module that serviced it.
        from: MemoryKind,
    },
    /// A demand request missed main memory.
    Fault {
        /// Page requested.
        page: u64,
        /// True for a store.
        write: bool,
    },
    /// A cross- or same-tier migration.
    Migrate {
        /// Page moved.
        page: u64,
        /// Source tier.
        from: MemoryKind,
        /// Destination tier.
        to: MemoryKind,
    },
    /// A disk fill answering a fault.
    Fill {
        /// Page filled.
        page: u64,
        /// Destination tier.
        into: MemoryKind,
    },
    /// A capacity eviction to disk.
    Evict {
        /// Page evicted.
        page: u64,
        /// Source tier.
        from: MemoryKind,
    },
    /// An NVM counter probe (Algorithm 1 provenance).
    Probe {
        /// Page probed.
        page: u64,
        /// Read counter after the hit.
        reads: u32,
        /// Write counter after the hit.
        writes: u32,
        /// True when a threshold fired (a promotion follows).
        fired: bool,
    },
}

/// One periodic state snapshot: where the engine stood as of the start
/// of demand access `access`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightSnapshot {
    /// Demand accesses completed when the snapshot was taken (the next
    /// access processed is index `access`).
    pub access: u64,
    /// Resident DRAM pages.
    pub dram_resident: u64,
    /// Resident NVM pages.
    pub nvm_resident: u64,
    /// Cumulative served demand requests.
    pub served: u64,
    /// Cumulative demand faults.
    pub faults: u64,
    /// Cumulative migrations (both directions, same-tier included).
    pub migrations: u64,
    /// Cumulative disk fills.
    pub fills: u64,
    /// Cumulative disk evictions.
    pub evictions: u64,
    /// Cumulative NVM counter probes.
    pub probes: u64,
    /// Two-LRU read-window position (`read_window_pages` bounded by the
    /// NVM resident set), for counter-window policies only.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub two_lru_window: Option<u64>,
}

/// The versioned per-cell dump: everything the recorder retained at the
/// moment [`FlightProbe::capture`] was called.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Workload name of the cell.
    pub workload: String,
    /// Policy name of the cell.
    pub policy: String,
    /// Why the dump exists: `"panic"`, `"error"`, `"audit-violation"`,
    /// or `"completed"`.
    pub trigger: String,
    /// The failure message, for `panic`/`error` triggers.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
    /// Panicking attempts that preceded the capture.
    pub retries: u64,
    /// Warmup prefix of the cell's trace, in accesses.
    pub warmup_accesses: u64,
    /// DRAM capacity in pages.
    pub dram_capacity: u64,
    /// NVM capacity in pages.
    pub nvm_capacity: u64,
    /// Demand accesses observed before the capture.
    pub accesses: u64,
    /// 0-based index of the last observed demand access (0 when none
    /// was observed at all — check `accesses`).
    pub final_access: u64,
    /// Resident DRAM pages at capture.
    pub dram_resident: u64,
    /// Resident NVM pages at capture.
    pub nvm_resident: u64,
    /// Cumulative served demand requests.
    pub served: u64,
    /// Cumulative demand faults.
    pub faults: u64,
    /// Cumulative migrations.
    pub migrations: u64,
    /// Cumulative disk fills.
    pub fills: u64,
    /// Cumulative disk evictions.
    pub evictions: u64,
    /// Cumulative NVM counter probes.
    pub probes: u64,
    /// Event-ring capacity.
    pub ring_capacity: u64,
    /// Events evicted from the ring (total seen = retained + dropped).
    pub events_dropped: u64,
    /// Snapshot cadence in demand accesses (0 = disabled).
    pub snapshot_every: u64,
    /// Snapshot-ring capacity.
    pub snapshot_capacity: u64,
    /// Snapshots evicted from their ring.
    pub snapshots_dropped: u64,
    /// Two-LRU read-window size in pages, for counter-window policies.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub two_lru_read_window_pages: Option<u64>,
    /// Retained snapshots, oldest first.
    pub snapshots: Vec<FlightSnapshot>,
    /// Retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

/// The matrix-level artifact written by `--flight-out`: the dumped
/// cells' [`FlightRecord`]s under the `hybridmem-flight-v1` schema, in
/// matrix order (workload-major, policy-minor — never completion
/// order, so the bytes are thread-count invariant).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightMatrixReport {
    /// Always [`FLIGHT_SCHEMA`].
    pub schema: String,
    /// Dumped cells in matrix order.
    pub cells: Vec<FlightRecord>,
    /// Number of dumped cells.
    pub dumped_cells: u64,
    /// Dumped cells whose trigger is a failure (`trigger` other than
    /// `"completed"`).
    pub triggered_cells: u64,
}

impl FlightMatrixReport {
    /// Rolls cell records into the artifact.
    #[must_use]
    pub fn new(cells: Vec<FlightRecord>) -> Self {
        let dumped_cells = cells.len() as u64;
        let triggered_cells = cells.iter().filter(|c| c.trigger != "completed").count() as u64;
        Self {
            schema: FLIGHT_SCHEMA.to_owned(),
            cells,
            dumped_cells,
            triggered_cells,
        }
    }
}

/// Writes the flight artifact as pretty-printed JSON plus a trailing
/// newline — the `--flight-out` artifact CI byte-compares.
///
/// # Errors
///
/// Returns any I/O error from the writer, and wraps (unreachable for
/// this type) serialization failures as [`std::io::ErrorKind::Other`].
pub fn write_flight_json<W: Write>(
    writer: &mut W,
    report: &FlightMatrixReport,
) -> std::io::Result<()> {
    let text = serde_json::to_string_pretty(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::Other, e))?;
    writer.write_all(text.as_bytes())?;
    writer.write_all(b"\n")
}

/// A bounded ring with an eviction counter — the storage discipline of
/// both the event and snapshot rings.
#[derive(Debug)]
struct Ring<T> {
    items: Vec<T>,
    capacity: usize,
    start: usize,
    dropped: u64,
}

impl<T: Copy> Ring<T> {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            items: Vec::with_capacity(capacity),
            capacity,
            start: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, item: T) {
        if self.items.len() == self.capacity {
            if let Some(slot) = self.items.get_mut(self.start) {
                *slot = item;
            }
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        } else {
            self.items.push(item);
        }
    }

    /// The retained items oldest first, without draining.
    fn snapshot(&self) -> Vec<T> {
        let (newer, older) = self.items.split_at(self.start.min(self.items.len()));
        older.iter().chain(newer.iter()).copied().collect()
    }
}

/// The shared recorder state — one handle inside the sink, one inside
/// the published probe, so a capture works even after the sink was
/// destroyed by an unwinding panic.
#[derive(Debug)]
struct FlightState {
    workload: String,
    policy: String,
    warmup: u64,
    dram_capacity: u64,
    nvm_capacity: u64,
    read_window_pages: Option<u64>,
    options: FlightOptions,
    /// Demand accesses observed so far.
    accesses: u64,
    served: u64,
    faults: u64,
    migrations: u64,
    fills: u64,
    evictions: u64,
    probes: u64,
    dram_resident: u64,
    nvm_resident: u64,
    events: Ring<FlightEvent>,
    snapshots: Ring<FlightSnapshot>,
}

impl FlightState {
    fn two_lru_window(&self) -> Option<u64> {
        self.read_window_pages
            .map(|pages| pages.min(self.nvm_resident))
    }

    fn take_snapshot(&mut self) {
        let snapshot = FlightSnapshot {
            access: self.accesses,
            dram_resident: self.dram_resident,
            nvm_resident: self.nvm_resident,
            served: self.served,
            faults: self.faults,
            migrations: self.migrations,
            fills: self.fills,
            evictions: self.evictions,
            probes: self.probes,
            two_lru_window: self.two_lru_window(),
        };
        self.snapshots.push(snapshot);
    }

    fn on_demand(&mut self) {
        let every = self.options.snapshot_every;
        if every > 0 && self.accesses > 0 && self.accesses % every == 0 {
            self.take_snapshot();
        }
    }

    fn record(&mut self, event: SimEvent) {
        let kind = match event {
            SimEvent::Served { access, from } => {
                self.on_demand();
                self.accesses += 1;
                self.served += 1;
                FlightEventKind::Served {
                    page: access.page.value(),
                    write: access.kind.is_write(),
                    from,
                }
            }
            SimEvent::Fault { access } => {
                self.on_demand();
                self.accesses += 1;
                self.faults += 1;
                FlightEventKind::Fault {
                    page: access.page.value(),
                    write: access.kind.is_write(),
                }
            }
            SimEvent::Action { action } => match action {
                PolicyAction::Migrate { page, from, to } => {
                    self.migrations += 1;
                    match from {
                        MemoryKind::Dram => {
                            self.dram_resident = self.dram_resident.saturating_sub(1);
                        }
                        MemoryKind::Nvm => self.nvm_resident = self.nvm_resident.saturating_sub(1),
                    }
                    match to {
                        MemoryKind::Dram => self.dram_resident += 1,
                        MemoryKind::Nvm => self.nvm_resident += 1,
                    }
                    FlightEventKind::Migrate {
                        page: page.value(),
                        from,
                        to,
                    }
                }
                PolicyAction::FillFromDisk { page, into } => {
                    self.fills += 1;
                    match into {
                        MemoryKind::Dram => self.dram_resident += 1,
                        MemoryKind::Nvm => self.nvm_resident += 1,
                    }
                    FlightEventKind::Fill {
                        page: page.value(),
                        into,
                    }
                }
                PolicyAction::EvictToDisk { page, from } => {
                    self.evictions += 1;
                    match from {
                        MemoryKind::Dram => {
                            self.dram_resident = self.dram_resident.saturating_sub(1);
                        }
                        MemoryKind::Nvm => self.nvm_resident = self.nvm_resident.saturating_sub(1),
                    }
                    FlightEventKind::Evict {
                        page: page.value(),
                        from,
                    }
                }
            },
            SimEvent::CounterProbe { access, probe } => {
                self.probes += 1;
                FlightEventKind::Probe {
                    page: access.page.value(),
                    reads: probe.reads,
                    writes: probe.writes,
                    fired: probe.fired.is_some(),
                }
            }
        };
        let access = self.accesses.saturating_sub(1);
        self.events.push(FlightEvent {
            access,
            event: kind,
        });
    }

    fn capture(&self, trigger: &str, error: Option<String>, retries: u64) -> FlightRecord {
        FlightRecord {
            workload: self.workload.clone(),
            policy: self.policy.clone(),
            trigger: trigger.to_owned(),
            error,
            retries,
            warmup_accesses: self.warmup,
            dram_capacity: self.dram_capacity,
            nvm_capacity: self.nvm_capacity,
            accesses: self.accesses,
            final_access: self.accesses.saturating_sub(1),
            dram_resident: self.dram_resident,
            nvm_resident: self.nvm_resident,
            served: self.served,
            faults: self.faults,
            migrations: self.migrations,
            fills: self.fills,
            evictions: self.evictions,
            probes: self.probes,
            ring_capacity: self.events.capacity as u64,
            events_dropped: self.events.dropped,
            snapshot_every: self.options.snapshot_every,
            snapshot_capacity: self.snapshots.capacity as u64,
            snapshots_dropped: self.snapshots.dropped,
            two_lru_read_window_pages: self.read_window_pages,
            snapshots: self.snapshots.snapshot(),
            events: self.events.snapshot(),
        }
    }
}

/// A capture handle onto a [`FlightRecorder`]'s shared state. Cheap to
/// clone; survives the sink's destruction.
#[derive(Debug, Clone)]
pub struct FlightProbe {
    state: Arc<Mutex<FlightState>>,
}

impl FlightProbe {
    /// Dumps the recorder's current state as a [`FlightRecord`].
    ///
    /// `trigger` names why (`"panic"`, `"error"`, `"audit-violation"`,
    /// `"completed"`); `error` carries the failure message when there
    /// is one; `retries` the panicking attempts that preceded this one.
    #[must_use]
    pub fn capture(&self, trigger: &str, error: Option<String>, retries: u64) -> FlightRecord {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .capture(trigger, error, retries)
    }
}

/// The black-box flight recorder [`EventSink`]. Construct with
/// [`FlightRecorder::new`], attach builder context, install in the
/// simulator (alone or inside a [`FanoutSink`](crate::FanoutSink)), and
/// publish its [`FlightProbe`] with [`publish_probe`] so the isolation
/// wrapper can capture a dump after a panic.
#[derive(Debug)]
pub struct FlightRecorder {
    state: Arc<Mutex<FlightState>>,
}

impl FlightRecorder {
    /// Creates a recorder for one cell.
    #[must_use]
    pub fn new(
        workload: impl Into<String>,
        policy: impl Into<String>,
        options: FlightOptions,
    ) -> Self {
        Self {
            state: Arc::new(Mutex::new(FlightState {
                workload: workload.into(),
                policy: policy.into(),
                warmup: 0,
                dram_capacity: 0,
                nvm_capacity: 0,
                read_window_pages: None,
                options,
                accesses: 0,
                served: 0,
                faults: 0,
                migrations: 0,
                fills: 0,
                evictions: 0,
                probes: 0,
                dram_resident: 0,
                nvm_resident: 0,
                events: Ring::new(options.events),
                snapshots: Ring::new(options.snapshots),
            })),
        }
    }

    /// Sets the cell's warmup prefix, recorded for correlation.
    #[must_use]
    pub fn with_warmup(self, warmup: u64) -> Self {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .warmup = warmup;
        self
    }

    /// Sets the per-tier page capacities, recorded for correlation.
    #[must_use]
    pub fn with_capacities(self, dram: u64, nvm: u64) -> Self {
        {
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.dram_capacity = dram;
            state.nvm_capacity = nvm;
        }
        self
    }

    /// Declares the two-LRU read-window size so snapshots can report
    /// the window position (counter-window policies only).
    #[must_use]
    pub fn with_read_window_pages(self, pages: u64) -> Self {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .read_window_pages = Some(pages);
        self
    }

    /// A capture handle that stays valid after the sink is destroyed.
    #[must_use]
    pub fn probe(&self) -> FlightProbe {
        FlightProbe {
            state: Arc::clone(&self.state),
        }
    }
}

impl EventSink for FlightRecorder {
    fn record(&mut self, event: SimEvent) {
        // xtask:allow is unnecessary here: flightrec is not on the lint's
        // hot-path list, and the mutex is uncontended (one thread ever
        // holds a handle during simulation; the probe reads only after
        // the cell finished or died).
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(event);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

std::thread_local! {
    /// The worker-local probe registry (see the module docs): at most
    /// one probe — the current attempt's — is registered at a time.
    static PROBE: RefCell<Option<FlightProbe>> = const { RefCell::new(None) };
}

/// Registers `probe` as the current attempt's flight probe, replacing
/// any stale one. Called by the experiment runner when it attaches a
/// [`FlightRecorder`] to a cell.
pub fn publish_probe(probe: FlightProbe) {
    PROBE.with(|slot| *slot.borrow_mut() = Some(probe));
}

/// Takes the current attempt's flight probe, leaving the registry
/// empty. The isolation wrapper calls this before each attempt (to
/// discard stale probes) and after `catch_unwind` (to capture the
/// failed attempt's dump).
pub fn take_probe() -> Option<FlightProbe> {
    PROBE.with(|slot| slot.borrow_mut().take())
}

/// An [`EventSink`] that panics when the demand event with the
/// scheduled 0-based index arrives — the `cell-panic-at@…` fault
/// clause. Installed *first* in the cell's fanout, so later sinks (the
/// flight recorder included) never observe the access that died: the
/// flight ring's newest event provably precedes the panic site.
#[derive(Debug)]
pub struct PanicTripwire {
    workload: String,
    policy: String,
    at: u64,
    seen: u64,
}

impl PanicTripwire {
    /// Creates a tripwire scheduled to kill demand access `at`
    /// (0-based, warmup included).
    #[must_use]
    pub fn new(workload: impl Into<String>, policy: impl Into<String>, at: u64) -> Self {
        Self {
            workload: workload.into(),
            policy: policy.into(),
            at,
            seen: 0,
        }
    }
}

impl EventSink for PanicTripwire {
    fn record(&mut self, event: SimEvent) {
        if matches!(event, SimEvent::Served { .. } | SimEvent::Fault { .. }) {
            if self.seen == self.at {
                panic!(
                    "injected fault: cell {}/{} panicked at access {}",
                    self.workload, self.policy, self.at
                );
            }
            self.seen += 1;
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem_types::{PageAccess, PageId};

    fn served(page: u64, from: MemoryKind) -> SimEvent {
        SimEvent::Served {
            access: PageAccess::read(PageId::new(page)),
            from,
        }
    }

    fn fault(page: u64) -> SimEvent {
        SimEvent::Fault {
            access: PageAccess::read(PageId::new(page)),
        }
    }

    fn fill(page: u64, into: MemoryKind) -> SimEvent {
        SimEvent::Action {
            action: PolicyAction::FillFromDisk {
                page: PageId::new(page),
                into,
            },
        }
    }

    fn options(events: usize, snapshot_every: u64, snapshots: usize) -> FlightOptions {
        FlightOptions {
            events,
            snapshot_every,
            snapshots,
        }
    }

    #[test]
    fn ring_keeps_the_newest_events_and_counts_drops() {
        let mut recorder = FlightRecorder::new("w", "p", options(3, 0, 4));
        for page in 0..5 {
            recorder.record(fault(page));
            recorder.record(fill(page, MemoryKind::Dram));
        }
        let record = recorder.probe().capture("completed", None, 0);
        assert_eq!(record.accesses, 5);
        assert_eq!(record.final_access, 4);
        assert_eq!(record.events.len(), 3, "ring bounded");
        assert_eq!(record.events_dropped, 7, "10 events through a 3-ring");
        // Oldest-first within the retained window; actions carry their
        // demand access's index.
        let accesses: Vec<u64> = record.events.iter().map(|e| e.access).collect();
        assert_eq!(accesses, vec![3, 4, 4]);
        assert!(matches!(
            record.events.last().map(|e| e.event),
            Some(FlightEventKind::Fill { page: 4, .. })
        ));
        assert_eq!(record.faults, 5);
        assert_eq!(record.fills, 5);
        assert_eq!(record.dram_resident, 5);
    }

    #[test]
    fn snapshots_fire_on_cadence_and_track_occupancy() {
        let mut recorder =
            FlightRecorder::new("w", "p", options(8, 2, 2)).with_read_window_pages(3);
        for page in 0..7 {
            recorder.record(fault(page));
            recorder.record(fill(page, MemoryKind::Nvm));
        }
        let record = recorder.probe().capture("completed", None, 0);
        // Snapshots at access boundaries 2, 4, 6; ring of 2 keeps 4, 6.
        assert_eq!(record.snapshots_dropped, 1);
        let at: Vec<u64> = record.snapshots.iter().map(|s| s.access).collect();
        assert_eq!(at, vec![4, 6]);
        let last = record.snapshots.last().copied().expect("two snapshots");
        assert_eq!(last.nvm_resident, 6, "state as of the boundary");
        assert_eq!(last.two_lru_window, Some(3), "window bounded by residency");
        assert_eq!(record.two_lru_read_window_pages, Some(3));
    }

    #[test]
    fn capture_survives_the_sink_being_dropped() {
        let mut recorder = FlightRecorder::new("canneal", "two-lru", FlightOptions::default())
            .with_capacities(10, 90)
            .with_warmup(7);
        recorder.record(served(1, MemoryKind::Dram));
        let probe = recorder.probe();
        drop(recorder); // the panic unwound the simulator and its sink
        let record = probe.capture("panic", Some("injected".to_owned()), 2);
        assert_eq!(record.workload, "canneal");
        assert_eq!(record.trigger, "panic");
        assert_eq!(record.error.as_deref(), Some("injected"));
        assert_eq!(record.retries, 2);
        assert_eq!((record.dram_capacity, record.nvm_capacity), (10, 90));
        assert_eq!(record.warmup_accesses, 7);
        assert_eq!(record.served, 1);
    }

    #[test]
    fn probe_registry_is_take_once_and_replaceable() {
        assert!(take_probe().is_none(), "registry starts empty");
        let first = FlightRecorder::new("a", "p", FlightOptions::default());
        let second = FlightRecorder::new("b", "p", FlightOptions::default());
        publish_probe(first.probe());
        publish_probe(second.probe());
        let taken = take_probe().expect("latest probe wins");
        assert_eq!(taken.capture("completed", None, 0).workload, "b");
        assert!(take_probe().is_none(), "taking drains the registry");
    }

    #[test]
    fn tripwire_panics_at_the_scheduled_demand_index_only() {
        let mut tripwire = PanicTripwire::new("w", "p", 2);
        tripwire.record(fault(0));
        tripwire.record(fill(0, MemoryKind::Dram)); // actions never trip
        tripwire.record(served(0, MemoryKind::Dram));
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tripwire.record(served(0, MemoryKind::Dram));
        }));
        let message = died.expect_err("demand index 2 must panic");
        let text = message
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(text.contains("injected fault"), "{text}");
        assert!(text.contains("w/p panicked at access 2"), "{text}");
    }

    #[test]
    fn tripwire_in_a_fanout_leaves_the_flight_ring_short_of_the_panic() {
        // The acceptance property: the flight ring's newest event
        // precedes the panic site.
        let recorder = FlightRecorder::new("w", "p", FlightOptions::default());
        let probe = recorder.probe();
        let mut fanout = crate::FanoutSink::new();
        fanout.push(Box::new(PanicTripwire::new("w", "p", 3)));
        fanout.push(Box::new(recorder));
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for page in 0..10 {
                fanout.record(served(page, MemoryKind::Dram));
            }
        }));
        assert!(died.is_err());
        let record = probe.capture("panic", None, 0);
        assert_eq!(record.accesses, 3, "accesses 0..=2 were recorded");
        assert_eq!(record.final_access, 2, "strictly before the panic at 3");
    }

    #[test]
    fn record_and_matrix_report_roundtrip_as_json() {
        let mut recorder = FlightRecorder::new("w", "p", options(4, 2, 2));
        recorder.record(fault(1));
        recorder.record(fill(1, MemoryKind::Dram));
        recorder.record(served(1, MemoryKind::Dram));
        let completed = recorder.probe().capture("completed", None, 0);
        let failed = recorder
            .probe()
            .capture("panic", Some("boom".to_owned()), 2);
        let matrix = FlightMatrixReport::new(vec![completed, failed]);
        assert_eq!(matrix.schema, FLIGHT_SCHEMA);
        assert_eq!(matrix.dumped_cells, 2);
        assert_eq!(matrix.triggered_cells, 1);

        let mut bytes = Vec::new();
        write_flight_json(&mut bytes, &matrix).expect("in-memory write");
        let parsed: FlightMatrixReport = serde_json::from_slice(&bytes).expect("roundtrip");
        assert_eq!(parsed, matrix);
    }

    #[test]
    fn zero_event_capacity_is_clamped_to_one() {
        let mut recorder = FlightRecorder::new("w", "p", options(0, 0, 0));
        recorder.record(served(1, MemoryKind::Dram));
        recorder.record(served(2, MemoryKind::Dram));
        let record = recorder.probe().capture("completed", None, 0);
        assert_eq!(record.ring_capacity, 1);
        assert_eq!(record.events.len(), 1);
        assert_eq!(record.events_dropped, 1);
    }
}
