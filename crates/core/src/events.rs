//! Simulation event observation: a hook for tracing, debugging, and
//! custom downstream analyses (e.g. the wear-leveling extension replays
//! migration events; the windowed metrics collector in [`crate::observe`]
//! aggregates them into interval records; a GUI could animate queue
//! states).

use hybridmem_policy::{NvmCounterProbe, PolicyAction};
use hybridmem_types::{MemoryKind, PageAccess};

/// One observable simulation event, emitted in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimEvent {
    /// A demand request was served by a memory module.
    Served {
        /// The request.
        access: PageAccess,
        /// Module that serviced it.
        from: MemoryKind,
    },
    /// A demand request missed main memory (the fill arrives as a
    /// subsequent [`SimEvent::Action`]).
    Fault {
        /// The faulting request.
        access: PageAccess,
    },
    /// A physical consequence decided by the policy (migration, fill,
    /// eviction).
    Action {
        /// The action, exactly as the policy reported it.
        action: PolicyAction,
    },
    /// Counter-state provenance of an NVM demand hit under a
    /// counter-window policy. Emitted immediately after the hit's
    /// [`SimEvent::Served`] and before any of its [`SimEvent::Action`]s,
    /// so a promotion's `Migrate` actions always follow the probe that
    /// explains them.
    CounterProbe {
        /// The NVM hit the probe describes.
        access: PageAccess,
        /// Algorithm 1's counter state at this hit.
        probe: NvmCounterProbe,
    },
}

/// Observer of [`SimEvent`]s. Implementations must be cheap: the sink is
/// called inline on the simulation hot path.
///
/// # Examples
///
/// ```
/// use hybridmem_core::{EventSink, HybridSimulator, RecordingSink, SimEvent};
/// use hybridmem_policy::SingleTierPolicy;
/// use hybridmem_types::{PageAccess, PageCount, PageId};
///
/// let policy = SingleTierPolicy::dram_only(PageCount::new(4))?;
/// let mut sim = HybridSimulator::with_date2016_devices(Box::new(policy));
/// sim.set_event_sink(Box::new(RecordingSink::new()));
/// sim.step(PageAccess::read(PageId::new(1)));
/// sim.step(PageAccess::read(PageId::new(1)));
///
/// let sink = sim.take_event_sink().expect("sink was installed");
/// let events = sink.as_any().downcast_ref::<RecordingSink>().unwrap();
/// assert!(matches!(events.events()[0], SimEvent::Fault { .. }));
/// assert!(matches!(events.events().last(), Some(SimEvent::Served { .. })));
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
pub trait EventSink {
    /// Observes one event.
    fn record(&mut self, event: SimEvent);

    /// Downcast support so callers can recover their concrete sink from
    /// [`HybridSimulator::take_event_sink`](crate::HybridSimulator::take_event_sink).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable downcast support, for sinks that are drained in place
    /// while still installed (see
    /// [`HybridSimulator::event_sink_mut`](crate::HybridSimulator::event_sink_mut)).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// An [`EventSink`] that stores events in memory.
///
/// The default ([`RecordingSink::new`]) grows without bound — convenient
/// for tests and small traces. [`RecordingSink::bounded`] caps memory
/// with a ring buffer that keeps only the most recent events, so an
/// observer can be left attached to a multi-million-access run without
/// risk of exhausting memory.
///
/// # Drop semantics when capacity is exceeded
///
/// A bounded recorder drops the **oldest** retained event, one per
/// overflowing `record`, irrecoverably — the ring is a "keep the newest
/// `cap`" window, not a sampling scheme. The loss is never silent:
/// [`RecordingSink::dropped`] counts every evicted event (cumulatively —
/// draining does not reset it), so callers can always report
/// `retained + dropped = total observed`. Within the
/// retained window, global event order is preserved exactly:
/// [`RecordingSink::iter`], [`RecordingSink::into_events`], and
/// [`RecordingSink::take_events`] all yield the surviving events
/// oldest-first, and draining with [`RecordingSink::take_events`] never
/// reorders events across successive drains (events recorded after a
/// drain are globally newer than everything drained before).
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Vec<SimEvent>,
    /// `None` = unbounded; `Some(cap)` = ring buffer of `cap` slots.
    capacity: Option<usize>,
    /// Oldest retained event's position in `events` (always 0 until the
    /// ring wraps).
    start: usize,
    /// Events evicted from the ring since construction (never reset).
    dropped: u64,
}

impl RecordingSink {
    /// Creates an empty, unbounded recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder that retains at most `capacity` events,
    /// discarding the oldest once full (a capacity of 0 is treated
    /// as 1).
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            events: Vec::with_capacity(capacity),
            capacity: Some(capacity),
            start: 0,
            dropped: 0,
        }
    }

    /// The retention limit, or `None` when unbounded.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded (or everything was discarded).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted from the ring since construction. Always 0 for an
    /// unbounded recorder. Cumulative: draining with
    /// [`RecordingSink::take_events`] does **not** reset it, so the
    /// total number of events ever observed is
    /// `dropped + len + (events drained earlier)`.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Raw storage slice. For an unbounded recorder this is chronological;
    /// once a bounded recorder has wrapped, storage order is unspecified —
    /// use [`RecordingSink::iter`] or [`RecordingSink::into_events`] for
    /// oldest-to-newest order.
    #[must_use]
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SimEvent> {
        let (newer, older) = self.events.split_at(self.start);
        older.iter().chain(newer.iter())
    }

    /// Consumes the recorder, returning the retained events oldest first.
    #[must_use]
    pub fn into_events(mut self) -> Vec<SimEvent> {
        self.events.rotate_left(self.start);
        self.events
    }

    /// Drains the retained events oldest first, leaving the recorder
    /// empty but reusable (the capacity bound is kept). Useful when the
    /// sink is only reachable behind a `dyn EventSink` downcast, where
    /// [`RecordingSink::into_events`] cannot take ownership.
    #[must_use]
    pub fn take_events(&mut self) -> Vec<SimEvent> {
        self.events.rotate_left(self.start);
        self.start = 0;
        std::mem::take(&mut self.events)
    }
}

impl EventSink for RecordingSink {
    fn record(&mut self, event: SimEvent) {
        match self.capacity {
            Some(capacity) if self.events.len() == capacity => {
                if let Some(slot) = self.events.get_mut(self.start) {
                    *slot = event;
                }
                self.start = (self.start + 1) % capacity;
                self.dropped += 1;
            }
            _ => self.events.push(event),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// An [`EventSink`] that only counts events by class — constant memory,
/// suitable for full-scale runs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    /// Served demand requests.
    pub served: u64,
    /// Page faults.
    pub faults: u64,
    /// Policy actions (migrations + fills + evictions).
    pub actions: u64,
    /// Counter-provenance probes (one per NVM demand hit under a
    /// counter-window policy).
    pub probes: u64,
}

impl CountingSink {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for CountingSink {
    fn record(&mut self, event: SimEvent) {
        match event {
            SimEvent::Served { .. } => self.served += 1,
            SimEvent::Fault { .. } => self.faults += 1,
            SimEvent::Action { .. } => self.actions += 1,
            SimEvent::CounterProbe { .. } => self.probes += 1,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// An [`EventSink`] that forwards every event to several child sinks, in
/// order — how the simulator runs the windowed collector and the page
/// ledger off one event stream without either knowing about the other.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Box<dyn EventSink>>,
}

impl FanoutSink {
    /// Creates an empty fan-out (a no-op sink until children are added).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a child sink; events reach children in insertion order.
    pub fn push(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// Number of child sinks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no children are attached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// The child sinks, in insertion order — downcast each with
    /// [`EventSink::as_any_mut`] to recover concrete observers.
    pub fn sinks_mut(&mut self) -> &mut [Box<dyn EventSink>] {
        &mut self.sinks
    }

    /// Removes and returns the children, in insertion order.
    #[must_use]
    pub fn take_sinks(&mut self) -> Vec<Box<dyn EventSink>> {
        std::mem::take(&mut self.sinks)
    }
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("children", &self.sinks.len())
            .finish()
    }
}

impl EventSink for FanoutSink {
    fn record(&mut self, event: SimEvent) {
        for sink in &mut self.sinks {
            sink.record(event);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem_types::PageId;

    fn read_event(page: u64) -> SimEvent {
        SimEvent::Served {
            access: PageAccess::read(PageId::new(page)),
            from: MemoryKind::Dram,
        }
    }

    fn served_page(event: &SimEvent) -> u64 {
        match event {
            SimEvent::Served { access, .. } => access.page.value(),
            other => panic!("expected Served, got {other:?}"),
        }
    }

    #[test]
    fn recording_sink_keeps_order() {
        let mut sink = RecordingSink::new();
        sink.record(SimEvent::Fault {
            access: PageAccess::read(PageId::new(1)),
        });
        sink.record(SimEvent::Served {
            access: PageAccess::read(PageId::new(1)),
            from: MemoryKind::Dram,
        });
        assert_eq!(sink.events().len(), 2);
        assert!(matches!(sink.events()[0], SimEvent::Fault { .. }));
        let events = sink.into_events();
        assert!(matches!(events[1], SimEvent::Served { .. }));
    }

    #[test]
    fn unbounded_sink_has_no_capacity() {
        let sink = RecordingSink::new();
        assert_eq!(sink.capacity(), None);
        assert!(sink.is_empty());
    }

    #[test]
    fn unbounded_sink_never_drops() {
        let mut sink = RecordingSink::new();
        for page in 0..100 {
            sink.record(read_event(page));
        }
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.len(), 100);
    }

    #[test]
    fn bounded_sink_keeps_most_recent_events() {
        let mut sink = RecordingSink::bounded(3);
        assert_eq!(sink.capacity(), Some(3));
        for page in 0..5 {
            sink.record(read_event(page));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2, "5 events through a 3-ring drop 2");
        let pages: Vec<u64> = sink.iter().map(served_page).collect();
        assert_eq!(pages, vec![2, 3, 4], "oldest events were discarded");
        let owned: Vec<u64> = sink.into_events().iter().map(served_page).collect();
        assert_eq!(owned, vec![2, 3, 4]);
    }

    #[test]
    fn bounded_sink_below_capacity_behaves_like_unbounded() {
        let mut sink = RecordingSink::bounded(8);
        for page in 0..3 {
            sink.record(read_event(page));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 0, "nothing evicted below capacity");
        let pages: Vec<u64> = sink.iter().map(served_page).collect();
        assert_eq!(pages, vec![0, 1, 2]);
        assert_eq!(sink.events().len(), 3, "no wrap: storage is chronological");
    }

    #[test]
    fn bounded_sink_capacity_zero_is_clamped_to_one() {
        let mut sink = RecordingSink::bounded(0);
        assert_eq!(sink.capacity(), Some(1));
        sink.record(read_event(1));
        sink.record(read_event(2));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.dropped(), 1);
        assert_eq!(sink.iter().map(served_page).next(), Some(2));
    }

    #[test]
    fn bounded_sink_wraps_repeatedly() {
        let mut sink = RecordingSink::bounded(2);
        for page in 0..7 {
            sink.record(read_event(page));
        }
        let pages: Vec<u64> = sink.iter().map(served_page).collect();
        assert_eq!(pages, vec![5, 6]);
    }

    #[test]
    fn take_events_drains_in_order_and_keeps_the_bound() {
        let mut sink = RecordingSink::bounded(3);
        for page in 0..5 {
            sink.record(read_event(page));
        }
        let drained: Vec<u64> = sink.take_events().iter().map(served_page).collect();
        assert_eq!(drained, vec![2, 3, 4]);
        assert!(sink.is_empty());
        assert_eq!(sink.capacity(), Some(3), "the bound survives the drain");
        assert_eq!(sink.dropped(), 2, "the drop counter survives the drain");

        for page in 10..12 {
            sink.record(read_event(page));
        }
        let refilled: Vec<u64> = sink.take_events().iter().map(served_page).collect();
        assert_eq!(refilled, vec![10, 11], "the recorder is reusable");
        assert_eq!(sink.dropped(), 2, "cumulative, not reset by draining");
    }

    #[test]
    fn counting_sink_counts_by_class() {
        let mut sink = CountingSink::new();
        sink.record(SimEvent::Fault {
            access: PageAccess::write(PageId::new(2)),
        });
        sink.record(SimEvent::Action {
            action: hybridmem_policy::PolicyAction::FillFromDisk {
                page: PageId::new(2),
                into: MemoryKind::Dram,
            },
        });
        sink.record(SimEvent::Served {
            access: PageAccess::read(PageId::new(2)),
            from: MemoryKind::Dram,
        });
        sink.record(SimEvent::CounterProbe {
            access: PageAccess::read(PageId::new(2)),
            probe: probe(),
        });
        assert_eq!(
            sink,
            CountingSink {
                served: 1,
                faults: 1,
                actions: 1,
                probes: 1
            }
        );
    }

    fn probe() -> hybridmem_policy::NvmCounterProbe {
        hybridmem_policy::NvmCounterProbe {
            rank: 0,
            reads: 1,
            writes: 0,
            read_lost: 0,
            write_lost: 0,
            read_threshold: 6,
            write_threshold: 12,
            fired: None,
        }
    }

    #[test]
    fn take_events_preserves_global_order_across_multiple_drains() {
        // Satellite: a bounded recorder drained repeatedly must never
        // reorder events globally, even when a drain lands mid-wrap.
        let mut sink = RecordingSink::bounded(3);
        let mut drained: Vec<u64> = Vec::new();
        let mut next_page = 0u64;
        // Alternate uneven bursts (some wrap the ring, some don't) with
        // drains; the pages that survive each drain must be strictly
        // increasing across the whole sequence.
        for burst in [1usize, 4, 2, 5, 3, 0, 7] {
            for _ in 0..burst {
                sink.record(read_event(next_page));
                next_page += 1;
            }
            let batch: Vec<u64> = sink.take_events().iter().map(served_page).collect();
            assert!(
                batch.len() <= 3,
                "a drain never yields more than the capacity"
            );
            drained.extend(batch);
        }
        assert!(
            drained.windows(2).all(|pair| pair[0] < pair[1]),
            "drained pages must be globally ordered: {drained:?}"
        );
        // Each burst keeps only its newest min(burst, 3) events.
        let expected: Vec<u64> = {
            let mut pages = Vec::new();
            let mut base = 0u64;
            for burst in [1u64, 4, 2, 5, 3, 0, 7] {
                let kept = burst.min(3);
                pages.extend(base + burst - kept..base + burst);
                base += burst;
            }
            pages
        };
        assert_eq!(drained, expected);
    }

    #[test]
    fn fanout_forwards_to_every_child_in_order() {
        let mut fanout = FanoutSink::new();
        assert!(fanout.is_empty());
        fanout.push(Box::new(CountingSink::new()));
        fanout.push(Box::new(RecordingSink::new()));
        assert_eq!(fanout.len(), 2);
        fanout.record(read_event(1));
        fanout.record(SimEvent::Fault {
            access: PageAccess::read(PageId::new(2)),
        });
        let sinks = fanout.take_sinks();
        assert!(fanout.is_empty(), "take_sinks leaves the fan-out empty");
        let counts = sinks[0]
            .as_any()
            .downcast_ref::<CountingSink>()
            .expect("first child is the counter");
        assert_eq!((counts.served, counts.faults), (1, 1));
        let recording = sinks[1]
            .as_any()
            .downcast_ref::<RecordingSink>()
            .expect("second child is the recorder");
        assert_eq!(recording.len(), 2);
        assert!(matches!(recording.events()[0], SimEvent::Served { .. }));
        assert!(matches!(recording.events()[1], SimEvent::Fault { .. }));
    }

    #[test]
    fn sinks_downcast() {
        let mut sink: Box<dyn EventSink> = Box::new(CountingSink::new());
        assert!(sink.as_any().downcast_ref::<CountingSink>().is_some());
        assert!(sink.as_any().downcast_ref::<RecordingSink>().is_none());
        assert!(sink.as_any_mut().downcast_mut::<CountingSink>().is_some());
    }
}
