//! Simulation event observation: a hook for tracing, debugging, and
//! custom downstream analyses (e.g. the wear-leveling extension replays
//! migration events; a GUI could animate queue states).

use hybridmem_policy::PolicyAction;
use hybridmem_types::{MemoryKind, PageAccess};

/// One observable simulation event, emitted in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimEvent {
    /// A demand request was served by a memory module.
    Served {
        /// The request.
        access: PageAccess,
        /// Module that serviced it.
        from: MemoryKind,
    },
    /// A demand request missed main memory (the fill arrives as a
    /// subsequent [`SimEvent::Action`]).
    Fault {
        /// The faulting request.
        access: PageAccess,
    },
    /// A physical consequence decided by the policy (migration, fill,
    /// eviction).
    Action {
        /// The action, exactly as the policy reported it.
        action: PolicyAction,
    },
}

/// Observer of [`SimEvent`]s. Implementations must be cheap: the sink is
/// called inline on the simulation hot path.
///
/// # Examples
///
/// ```
/// use hybridmem_core::{EventSink, HybridSimulator, RecordingSink, SimEvent};
/// use hybridmem_policy::SingleTierPolicy;
/// use hybridmem_types::{PageAccess, PageCount, PageId};
///
/// let policy = SingleTierPolicy::dram_only(PageCount::new(4))?;
/// let mut sim = HybridSimulator::with_date2016_devices(Box::new(policy));
/// sim.set_event_sink(Box::new(RecordingSink::new()));
/// sim.step(PageAccess::read(PageId::new(1)));
/// sim.step(PageAccess::read(PageId::new(1)));
///
/// let sink = sim.take_event_sink().expect("sink was installed");
/// let events = sink.as_any().downcast_ref::<RecordingSink>().unwrap();
/// assert!(matches!(events.events()[0], SimEvent::Fault { .. }));
/// assert!(matches!(events.events().last(), Some(SimEvent::Served { .. })));
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
pub trait EventSink {
    /// Observes one event.
    fn record(&mut self, event: SimEvent);

    /// Downcast support so callers can recover their concrete sink from
    /// [`HybridSimulator::take_event_sink`](crate::HybridSimulator::take_event_sink).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// An [`EventSink`] that stores every event in memory — convenient for
/// tests and small traces (it grows unboundedly; do not attach it to
/// multi-million-access runs).
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Vec<SimEvent>,
}

impl RecordingSink {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The events observed so far, in order.
    #[must_use]
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Consumes the recorder, returning its events.
    #[must_use]
    pub fn into_events(self) -> Vec<SimEvent> {
        self.events
    }
}

impl EventSink for RecordingSink {
    fn record(&mut self, event: SimEvent) {
        self.events.push(event);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// An [`EventSink`] that only counts events by class — constant memory,
/// suitable for full-scale runs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    /// Served demand requests.
    pub served: u64,
    /// Page faults.
    pub faults: u64,
    /// Policy actions (migrations + fills + evictions).
    pub actions: u64,
}

impl CountingSink {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for CountingSink {
    fn record(&mut self, event: SimEvent) {
        match event {
            SimEvent::Served { .. } => self.served += 1,
            SimEvent::Fault { .. } => self.faults += 1,
            SimEvent::Action { .. } => self.actions += 1,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem_types::PageId;

    #[test]
    fn recording_sink_keeps_order() {
        let mut sink = RecordingSink::new();
        sink.record(SimEvent::Fault {
            access: PageAccess::read(PageId::new(1)),
        });
        sink.record(SimEvent::Served {
            access: PageAccess::read(PageId::new(1)),
            from: MemoryKind::Dram,
        });
        assert_eq!(sink.events().len(), 2);
        assert!(matches!(sink.events()[0], SimEvent::Fault { .. }));
        let events = sink.into_events();
        assert!(matches!(events[1], SimEvent::Served { .. }));
    }

    #[test]
    fn counting_sink_counts_by_class() {
        let mut sink = CountingSink::new();
        sink.record(SimEvent::Fault {
            access: PageAccess::write(PageId::new(2)),
        });
        sink.record(SimEvent::Action {
            action: hybridmem_policy::PolicyAction::FillFromDisk {
                page: PageId::new(2),
                into: MemoryKind::Dram,
            },
        });
        sink.record(SimEvent::Served {
            access: PageAccess::read(PageId::new(2)),
            from: MemoryKind::Dram,
        });
        assert_eq!(
            sink,
            CountingSink {
                served: 1,
                faults: 1,
                actions: 1
            }
        );
    }

    #[test]
    fn sinks_downcast() {
        let sink: Box<dyn EventSink> = Box::new(CountingSink::new());
        assert!(sink.as_any().downcast_ref::<CountingSink>().is_some());
        assert!(sink.as_any().downcast_ref::<RecordingSink>().is_none());
    }
}
