//! Seeded, deterministic fault injection for the experiment engine.
//!
//! Long campaigns meet real faults: a spill file goes unreadable, a
//! disk flips a bit, a write fails mid-rename, a worker panics. Hoping
//! those paths are correct is not the same as exercising them, so this
//! module gives tests (and the CI `chaos` job) a scripted way to make
//! each one happen **on schedule** — the same plan string always fires
//! the same faults at the same attempt numbers, so a chaos run is as
//! reproducible as a clean one.
//!
//! A [`FaultPlan`] is parsed from a compact spec (flag `--fault-plan`,
//! or the `HYBRIDMEM_FAULT_PLAN` environment variable for the global
//! trace cache) of `;`-separated clauses:
//!
//! ```text
//! spill-read-error@N          Nth spill read attempt fails outright
//! spill-write-error@N         Nth spill write attempt fails
//! bit-flip@N:OFFSET           Nth spill read sees byte OFFSET (mod len) flipped
//! truncate@N:KEEP             Nth spill read sees only the first KEEP bytes
//! cell-panic@WORKLOAD/POLICY:K   first K attempts of that matrix cell panic
//! cell-panic-at@WORKLOAD/POLICY:ACCESS   that cell panics mid-simulation,
//!                                at 0-based demand access ACCESS (every attempt)
//! ```
//!
//! Attempt numbers are 1-based and counted per plan instance. The
//! spill clauses are consumed by [`TraceCache`](crate::TraceCache)
//! (every corrupted read must degrade to a counted miss plus
//! regeneration, every failed write to a counted
//! `spill_write_errors`); the `cell-panic` clause is consumed by the
//! matrix scheduler's isolation wrapper
//! ([`run_isolated`](crate::health::run_isolated)), which catches the
//! panic, retries the cell a bounded number of times, and quarantines
//! it in the `hybridmem-matrix-health-v1` report if it keeps dying.
//! With `K` no larger than the retry budget the cell *recovers*; with a
//! larger `K` it fails without taking the rest of the matrix down.
//!
//! `cell-panic` fires **before** the cell starts simulating, so its
//! flight recording is empty. `cell-panic-at` instead arms a
//! [`PanicTripwire`](crate::flightrec::PanicTripwire) event sink that
//! kills the cell *mid-simulation* at an exact demand access — the
//! clause the chaos job uses to prove a flight dump's last event
//! precedes the panic site. It fires on every attempt, so the cell is
//! always quarantined (a mid-run panic is never transient).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hybridmem_types::{Error, FxHashMap};

/// A fault scheduled against one spill read attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpillReadFault {
    /// The read fails outright, as if the file were unreadable.
    Error,
    /// One byte of the file image is bit-flipped before decoding.
    BitFlip {
        /// Byte offset of the flip, taken modulo the file length.
        offset: u64,
    },
    /// The file image is cut to its first `keep` bytes.
    Truncate {
        /// Bytes surviving the truncation.
        keep: u64,
    },
}

/// A deterministic schedule of injected faults. See the module docs
/// for the spec grammar. Cheap to share behind an `Arc`; all state is
/// interior and thread-safe.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// `(attempt, fault)` pairs for spill reads, 1-based.
    read_faults: Vec<(u64, SpillReadFault)>,
    /// 1-based spill write attempts that must fail.
    write_errors: Vec<u64>,
    /// `(workload, policy) → K`: panic the first K attempts of a cell.
    cell_panics: FxHashMap<(String, String), u64>,
    /// `(workload, policy) → ACCESS`: panic that cell mid-simulation at
    /// the 0-based demand access, on every attempt.
    cell_panic_ats: FxHashMap<(String, String), u64>,
    /// Spill read attempts made so far.
    read_attempts: AtomicU64,
    /// Spill write attempts made so far.
    write_attempts: AtomicU64,
    /// Attempts made so far per cell, for the `cell-panic` schedule.
    // xtask:allow(hot-path-lock, why=one acquisition per matrix-cell attempt, not per simulated access)
    cell_attempts: Mutex<FxHashMap<(String, String), u64>>,
}

impl FaultPlan {
    /// Parses a plan from the `;`-separated clause grammar in the
    /// module docs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] naming the malformed clause.
    pub fn parse(spec: &str) -> Result<Self, Error> {
        let mut plan = Self::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (name, rest) = clause.split_once('@').ok_or_else(|| {
                Error::invalid_input(format!("fault clause {clause:?}: expected NAME@ARGS"))
            })?;
            let number = |text: &str, what: &str| {
                text.parse::<u64>().map_err(|_| {
                    Error::invalid_input(format!("fault clause {clause:?}: bad {what} {text:?}"))
                })
            };
            match name {
                "spill-read-error" => plan
                    .read_faults
                    .push((number(rest, "attempt")?, SpillReadFault::Error)),
                "spill-write-error" => plan.write_errors.push(number(rest, "attempt")?),
                "bit-flip" | "truncate" => {
                    let (attempt, arg) = rest.split_once(':').ok_or_else(|| {
                        Error::invalid_input(format!("fault clause {clause:?}: expected @N:ARG"))
                    })?;
                    let attempt = number(attempt, "attempt")?;
                    let fault = if name == "bit-flip" {
                        SpillReadFault::BitFlip {
                            offset: number(arg, "offset")?,
                        }
                    } else {
                        SpillReadFault::Truncate {
                            keep: number(arg, "length")?,
                        }
                    };
                    plan.read_faults.push((attempt, fault));
                }
                "cell-panic" | "cell-panic-at" => {
                    let (cell, arg) = rest.rsplit_once(':').ok_or_else(|| {
                        Error::invalid_input(format!(
                            "fault clause {clause:?}: expected @WORKLOAD/POLICY:ARG"
                        ))
                    })?;
                    // Policy names never contain '/', but a workload may
                    // be a whole trace path — split at the last one.
                    let (workload, policy) = cell.rsplit_once('/').ok_or_else(|| {
                        Error::invalid_input(format!(
                            "fault clause {clause:?}: expected WORKLOAD/POLICY"
                        ))
                    })?;
                    let key = (workload.to_owned(), policy.to_owned());
                    if name == "cell-panic" {
                        plan.cell_panics.insert(key, number(arg, "panic count")?);
                    } else {
                        plan.cell_panic_ats.insert(key, number(arg, "access")?);
                    }
                }
                other => {
                    return Err(Error::invalid_input(format!(
                        "unknown fault clause {other:?} (expected spill-read-error, \
                         spill-write-error, bit-flip, truncate, cell-panic, or \
                         cell-panic-at)"
                    )));
                }
            }
        }
        Ok(plan)
    }

    /// The plan named by `HYBRIDMEM_FAULT_PLAN`, if the variable is set
    /// and non-empty. A malformed plan is an error (silently ignoring
    /// it would un-inject the faults a chaos run asked for).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for a malformed plan string.
    pub fn from_env() -> Result<Option<Self>, Error> {
        match std::env::var("HYBRIDMEM_FAULT_PLAN") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// True when the plan schedules no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.read_faults.is_empty()
            && self.write_errors.is_empty()
            && self.cell_panics.is_empty()
            && self.cell_panic_ats.is_empty()
    }

    /// The 0-based demand access at which the plan kills cell
    /// `(workload, policy)` mid-simulation, if a `cell-panic-at` clause
    /// scheduled one. The experiment runner arms a
    /// [`PanicTripwire`](crate::flightrec::PanicTripwire) with it.
    #[must_use]
    pub fn cell_panic_access(&self, workload: &str, policy: &str) -> Option<u64> {
        self.cell_panic_ats
            .get(&(workload.to_owned(), policy.to_owned()))
            .copied()
    }

    /// Books one spill read attempt and applies whatever fault the plan
    /// scheduled for it to the in-memory file image.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for a scheduled
    /// `spill-read-error` — the caller treats it exactly like a real
    /// I/O failure (a counted spill miss).
    ///
    /// # Panics
    ///
    /// Panics if the plan's cell-attempt mutex was poisoned.
    pub fn corrupt_spill_read(&self, bytes: &mut Vec<u8>) -> Result<(), Error> {
        // xtask:allow(atomic-ordering, why=monotonic attempt counter; per-attempt uniqueness is all that matters)
        let attempt = self.read_attempts.fetch_add(1, Ordering::Relaxed) + 1;
        for &(at, fault) in &self.read_faults {
            if at != attempt {
                continue;
            }
            match fault {
                SpillReadFault::Error => {
                    return Err(Error::invalid_input(format!(
                        "injected fault: spill read attempt {attempt} failed"
                    )));
                }
                SpillReadFault::BitFlip { offset } => {
                    if !bytes.is_empty() {
                        let index = usize::try_from(offset % bytes.len() as u64).unwrap_or(0);
                        bytes[index] ^= 0x01;
                    }
                }
                SpillReadFault::Truncate { keep } => {
                    bytes.truncate(usize::try_from(keep).unwrap_or(usize::MAX));
                }
            }
        }
        Ok(())
    }

    /// Books one spill write attempt; true when the plan scheduled it
    /// to fail (the caller counts a `spill_write_errors` and skips the
    /// write).
    pub fn fail_spill_write(&self) -> bool {
        // xtask:allow(atomic-ordering, why=monotonic attempt counter; per-attempt uniqueness is all that matters)
        let attempt = self.write_attempts.fetch_add(1, Ordering::Relaxed) + 1;
        self.write_errors.contains(&attempt)
    }

    /// Books one attempt of matrix cell `(workload, policy)` and panics
    /// if the plan scheduled this attempt to die. Called inside the
    /// scheduler's `catch_unwind` isolation wrapper, never on a bare
    /// thread.
    ///
    /// # Panics
    ///
    /// Panics deliberately for a scheduled `cell-panic` attempt (that
    /// is the injected fault), and if the cell-attempt mutex was
    /// poisoned.
    pub fn fire_cell_panic(&self, workload: &str, policy: &str) {
        let key = (workload.to_owned(), policy.to_owned());
        let Some(&scheduled) = self.cell_panics.get(&key) else {
            return;
        };
        let attempt = {
            // xtask:allow(hot-path-lock, why=one acquisition per matrix-cell attempt, not per simulated access)
            let mut attempts = self.cell_attempts.lock().expect("fault plan poisoned");
            let entry = attempts.entry(key).or_insert(0);
            *entry += 1;
            *entry
        };
        if attempt <= scheduled {
            panic!(
                "injected fault: cell {workload}/{policy} panicked \
                 (attempt {attempt} of {scheduled} scheduled)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_clause_kind() {
        let plan = FaultPlan::parse(
            "spill-read-error@1; spill-write-error@2; bit-flip@3:17; \
             truncate@4:100; cell-panic@bodytrack/two-lru:2; \
             cell-panic-at@canneal/clock-dwf:500;",
        )
        .unwrap();
        assert_eq!(plan.read_faults.len(), 3);
        assert_eq!(plan.write_errors, vec![2]);
        assert_eq!(
            plan.cell_panics
                .get(&("bodytrack".to_owned(), "two-lru".to_owned())),
            Some(&2)
        );
        assert_eq!(plan.cell_panic_access("canneal", "clock-dwf"), Some(500));
        assert_eq!(plan.cell_panic_access("canneal", "two-lru"), None);
        assert!(!plan.is_empty());
        assert!(
            !FaultPlan::parse("cell-panic-at@w/p:0").unwrap().is_empty(),
            "a lone cell-panic-at clause makes the plan non-empty"
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_clauses() {
        for bad in [
            "nonsense",
            "frobnicate@1",
            "spill-read-error@x",
            "bit-flip@1",
            "truncate@1:x",
            "cell-panic@bodytrack:1",
            "cell-panic-at@bodytrack:1",
            "cell-panic-at@bodytrack/two-lru:x",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.to_string().contains("fault clause") || err.to_string().contains("clause"));
        }
    }

    #[test]
    fn read_faults_fire_on_their_scheduled_attempt_only() {
        let plan = FaultPlan::parse("spill-read-error@2; bit-flip@3:0; truncate@4:2").unwrap();
        let image = vec![0xAAu8, 0xBB, 0xCC, 0xDD];

        let mut bytes = image.clone();
        plan.corrupt_spill_read(&mut bytes).unwrap();
        assert_eq!(bytes, image, "attempt 1 is clean");

        let mut bytes = image.clone();
        let err = plan.corrupt_spill_read(&mut bytes).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");

        let mut bytes = image.clone();
        plan.corrupt_spill_read(&mut bytes).unwrap();
        assert_eq!(bytes[0], 0xAB, "attempt 3 flips byte 0");

        let mut bytes = image.clone();
        plan.corrupt_spill_read(&mut bytes).unwrap();
        assert_eq!(bytes, image[..2], "attempt 4 truncates to 2 bytes");

        let mut bytes = image.clone();
        plan.corrupt_spill_read(&mut bytes).unwrap();
        assert_eq!(bytes, image, "attempt 5 is clean again");
    }

    #[test]
    fn bit_flip_offset_wraps_and_empty_images_survive() {
        let plan = FaultPlan::parse("bit-flip@1:5; bit-flip@2:0").unwrap();
        let mut bytes = vec![0u8, 0, 0];
        plan.corrupt_spill_read(&mut bytes).unwrap();
        assert_eq!(bytes, [0, 0, 1], "offset 5 mod 3 = 2");
        let mut empty = Vec::new();
        plan.corrupt_spill_read(&mut empty).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn write_errors_fire_once_each() {
        let plan = FaultPlan::parse("spill-write-error@1; spill-write-error@3").unwrap();
        assert!(plan.fail_spill_write());
        assert!(!plan.fail_spill_write());
        assert!(plan.fail_spill_write());
        assert!(!plan.fail_spill_write());
    }

    #[test]
    fn cell_panics_stop_after_the_scheduled_count() {
        let plan = FaultPlan::parse("cell-panic@w/p:2").unwrap();
        for attempt in 1..=2 {
            let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                plan.fire_cell_panic("w", "p");
            }));
            assert!(died.is_err(), "attempt {attempt} panics");
        }
        plan.fire_cell_panic("w", "p"); // attempt 3 survives
        plan.fire_cell_panic("other", "p"); // unscheduled cells never die
    }

    #[test]
    fn env_plan_is_optional_and_validated() {
        // Read-only check against the ambient environment: the variable
        // is unset in test runs, so `from_env` reports no plan.
        if std::env::var("HYBRIDMEM_FAULT_PLAN").is_err() {
            assert!(FaultPlan::from_env().unwrap().is_none());
        }
        assert!(FaultPlan::parse("bogus@@").is_err());
    }
}
