//! Online run-health auditing: conservation laws checked as events stream.
//!
//! The simulator's accounting (Eq. 1 / Eq. 2) rests on invariants that
//! the rest of the telemetry stack merely *assumes*: every demand fault
//! is answered by exactly one disk fill, pages move between tiers
//! without being duplicated or lost, demotions are explained by the
//! promotion or fault that displaced them, and the event-priced access
//! cost agrees with the closed-form [`ModelParams::date2016`]
//! prediction. The [`AuditSink`] is an [`EventSink`] that checks those
//! laws online — it can ride along any instrumented run via
//! [`Instrumentation::with_audit`](crate::Instrumentation::with_audit)
//! — and reports each breach as a structured [`AuditViolation`].
//!
//! # Invariant catalog
//!
//! | id | law |
//! |----|-----|
//! | `fill-fault` | disk fills ≡ demand faults at every access boundary |
//! | `occupancy-capacity` | per-tier occupancy ≤ capacity at every access boundary |
//! | `occupancy-delta` | fill − evict − migration deltas never drive a tier negative |
//! | `demotion-pairing` | a DRAM→NVM demotion outside a fault is paired with an NVM→DRAM promotion in the same access ([`DemotionCause`](crate::DemotionCause) semantics) |
//! | `monotone-access` | actions and probes attach to a monotone demand-access sequence |
//! | `two-lru-window` | a fired NVM counter probe is followed by that page's promotion, an unfired one is not |
//! | `amat-window` | per-window event-priced AMAT within tolerance of the Eq. 1 closed form |
//!
//! The occupancy laws are gated on [`AuditSink::with_exclusive_residency`]:
//! the `dram-cache` policy reports *cost-equivalent* migrations (a clean
//! cache drop emits no action at all), so its action stream is not an
//! exclusive-residency journal and only the remaining invariants apply.
//!
//! Violations are deduplicated by **resynchronization**: once an
//! imbalance is reported the sink adopts it as the new baseline, so a
//! single seeded fault yields a single violation instead of one per
//! subsequent access — the property the fixture tests pin down.
//!
//! Everything is access-index-based (never wall-clock): a clean run is
//! clean at any thread count, and the same tampered stream produces the
//! same violations byte for byte.

use std::io::Write;

use hybridmem_policy::{NvmCounterProbe, PolicyAction};
use hybridmem_types::{AccessKind, MemoryKind, PageAccess, PageId};
use serde::{Deserialize, Serialize};

use crate::{EventSink, ModelParams, Probabilities, SimEvent};

/// Schema identifier of the audit JSON report.
pub const AUDIT_SCHEMA: &str = "hybridmem-audit-v1";

/// User-facing knobs of an [`AuditSink`] — the part that travels inside
/// [`Instrumentation`](crate::Instrumentation). Per-cell context
/// (capacities, warmup, residency semantics) is attached by the
/// experiment runner via the sink's builder methods instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditOptions {
    /// AMAT check granularity in demand accesses (0 = one whole-run
    /// window), mirroring the windowed collector's slicing.
    pub window: u64,
    /// Relative tolerance of the `amat-window` check, in parts per
    /// million of the closed-form prediction. The priced and predicted
    /// sides are the same arithmetic regrouped, so the default of
    /// 100 ppm is orders of magnitude above floating-point noise while
    /// still catching any real accounting drift.
    pub amat_tolerance_ppm: u32,
    /// Violations retained in the report; the excess is counted in
    /// [`AuditReport::dropped_violations`].
    pub max_violations: u32,
}

impl Default for AuditOptions {
    fn default() -> Self {
        Self {
            window: 0,
            amat_tolerance_ppm: 100,
            max_violations: 256,
        }
    }
}

/// One invariant breach: where it happened and what was expected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditViolation {
    /// Invariant id from the catalog (e.g. `"fill-fault"`).
    pub invariant: String,
    /// Demand-access index the breach is attributed to.
    pub access_index: u64,
    /// Page involved, when the breach concerns one.
    pub page: Option<u64>,
    /// What the event stream actually showed.
    pub observed: String,
    /// What the invariant required.
    pub expected: String,
}

/// One cell's audit outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Workload name the run was labeled with.
    pub workload: String,
    /// Policy name the run was labeled with.
    pub policy: String,
    /// Demand accesses audited (warmup included).
    pub accesses: u64,
    /// Demand faults observed.
    pub faults: u64,
    /// Disk fills observed.
    pub fills: u64,
    /// Retained violations, in event order.
    pub violations: Vec<AuditViolation>,
    /// Violations beyond [`AuditOptions::max_violations`].
    pub dropped_violations: u64,
    /// All violations, retained plus dropped.
    pub total_violations: u64,
    /// True when no invariant was breached.
    pub clean: bool,
}

/// The matrix-level roll-up written by `--audit-out`: every cell's
/// [`AuditReport`] under the `hybridmem-audit-v1` schema, plus totals CI
/// can gate on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditMatrixReport {
    /// Always [`AUDIT_SCHEMA`].
    pub schema: String,
    /// Per-cell reports in matrix order.
    pub cells: Vec<AuditReport>,
    /// Sum of the cells' `total_violations`.
    pub total_violations: u64,
    /// Sum of the cells' `dropped_violations`.
    pub dropped_violations: u64,
    /// True when every cell is clean.
    pub clean: bool,
}

impl AuditMatrixReport {
    /// Rolls cell reports into the gateable aggregate.
    #[must_use]
    pub fn new(cells: Vec<AuditReport>) -> Self {
        let total_violations = cells.iter().map(|c| c.total_violations).sum();
        let dropped_violations = cells.iter().map(|c| c.dropped_violations).sum();
        let clean = cells.iter().all(|c| c.clean);
        Self {
            schema: AUDIT_SCHEMA.to_owned(),
            cells,
            total_violations,
            dropped_violations,
            clean,
        }
    }
}

/// Writes the aggregate audit report as pretty-printed JSON plus a
/// trailing newline — the `--audit-out` artifact CI parses.
///
/// # Errors
///
/// Returns any I/O error from the writer, and wraps (unreachable for
/// this type) serialization failures as [`std::io::ErrorKind::Other`].
pub fn write_audit_json<W: Write>(
    writer: &mut W,
    report: &AuditMatrixReport,
) -> std::io::Result<()> {
    let text = serde_json::to_string_pretty(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::Other, e))?;
    writer.write_all(text.as_bytes())?;
    writer.write_all(b"\n")
}

/// Per-window tallies feeding the `amat-window` check. The `model_*`
/// migration counts mirror the windowed collector (counted by
/// destination tier, same-module included); the `priced_*` counts only
/// include cross-tier moves — exactly what the simulator charges — so
/// the two sides diverge precisely when the stream contains motion the
/// closed form prices but the simulator does not.
#[derive(Debug, Clone, Copy, Default)]
struct WindowTallies {
    dram_read_hits: u64,
    dram_write_hits: u64,
    nvm_read_hits: u64,
    nvm_write_hits: u64,
    faults: u64,
    fills_to_dram: u64,
    fills_to_nvm: u64,
    model_migrations_to_dram: u64,
    model_migrations_to_nvm: u64,
    priced_migrations_to_dram: u64,
    priced_migrations_to_nvm: u64,
}

/// State of the access group currently being assembled: one demand
/// event plus the probe and actions that trail it. Group-scoped
/// invariants (`demotion-pairing`, `two-lru-window`) and the boundary
/// conservation checks run when the *next* demand access arrives (or at
/// [`AuditSink::finish`]), because a fault's fill legitimately follows
/// its fault event.
#[derive(Debug, Clone, Copy, Default)]
struct AccessGroup {
    /// Demand-access index this group belongs to.
    index: u64,
    /// The accessed page.
    page: Option<PageId>,
    /// Whether the demand event was a fault.
    is_fault: bool,
    /// DRAM→NVM demotions seen in the group.
    demotions: u64,
    /// NVM→DRAM promotions seen in the group.
    promotions: u64,
    /// Whether the demand page itself was promoted NVM→DRAM.
    promoted_demand_page: bool,
    /// The access's NVM counter probe, if one arrived.
    probe: Option<NvmCounterProbe>,
}

/// The always-on run-health auditor. See the module docs for the
/// invariant catalog and the resynchronization rules.
///
/// # Examples
///
/// ```
/// use hybridmem_core::{AuditOptions, AuditSink, EventSink, SimEvent};
/// use hybridmem_policy::PolicyAction;
/// use hybridmem_types::{MemoryKind, PageAccess, PageId};
///
/// let mut audit = AuditSink::new("demo", "two-lru", AuditOptions::default());
/// audit.record(SimEvent::Fault {
///     access: PageAccess::read(PageId::new(7)),
/// });
/// audit.record(SimEvent::Action {
///     action: PolicyAction::FillFromDisk {
///         page: PageId::new(7),
///         into: MemoryKind::Dram,
///     },
/// });
/// audit.finish();
/// assert!(audit.report().clean);
/// ```
#[derive(Debug)]
pub struct AuditSink {
    workload: String,
    policy: String,
    options: AuditOptions,
    /// DRAM page capacity the occupancy law checks against.
    dram_capacity: u64,
    /// NVM page capacity the occupancy law checks against.
    nvm_capacity: u64,
    /// Warmup prefix excluded from AMAT windows (conservation laws
    /// still apply during warmup).
    warmup: u64,
    /// False for policies whose action stream is cost-equivalent rather
    /// than an exclusive-residency journal (dram-cache).
    exclusive_residency: bool,
    /// Demand accesses seen so far (warmup included).
    access_index: u64,
    started: bool,
    finished: bool,
    dram_occupancy: u64,
    nvm_occupancy: u64,
    faults_total: u64,
    fills_total: u64,
    /// Last reported `fills − faults` imbalance (resync baseline).
    reported_imbalance: i128,
    /// Highest occupancy already reported per tier (resync baseline).
    reported_dram_level: u64,
    reported_nvm_level: u64,
    group: AccessGroup,
    /// Demand accesses in the AMAT window currently being filled.
    in_window: u64,
    /// Trace index of the current window's first access.
    window_start: u64,
    window: WindowTallies,
    violations: Vec<AuditViolation>,
    dropped_violations: u64,
}

impl AuditSink {
    /// Creates an auditor with unconstrained capacities, no warmup, and
    /// exclusive-residency semantics; attach per-cell context with the
    /// builder methods.
    #[must_use]
    pub fn new(
        workload: impl Into<String>,
        policy: impl Into<String>,
        options: AuditOptions,
    ) -> Self {
        Self {
            workload: workload.into(),
            policy: policy.into(),
            options,
            dram_capacity: u64::MAX,
            nvm_capacity: u64::MAX,
            warmup: 0,
            exclusive_residency: true,
            access_index: 0,
            started: false,
            finished: false,
            dram_occupancy: 0,
            nvm_occupancy: 0,
            faults_total: 0,
            fills_total: 0,
            reported_imbalance: 0,
            reported_dram_level: 0,
            reported_nvm_level: 0,
            group: AccessGroup::default(),
            in_window: 0,
            window_start: 0,
            window: WindowTallies::default(),
            violations: Vec::new(),
            dropped_violations: 0,
        }
    }

    /// Sets the per-tier page capacities the occupancy law enforces.
    #[must_use]
    pub fn with_capacities(mut self, dram: u64, nvm: u64) -> Self {
        self.dram_capacity = dram;
        self.nvm_capacity = nvm;
        self
    }

    /// Sets the warmup prefix excluded from AMAT windows.
    #[must_use]
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Disables the occupancy laws for policies whose action stream
    /// prices cost without journaling residency (dram-cache).
    #[must_use]
    pub fn with_exclusive_residency(mut self, exclusive: bool) -> Self {
        self.exclusive_residency = exclusive;
        self
    }

    /// Closes the final access group and AMAT window. Call exactly once
    /// after the run (idempotent when nothing new arrived).
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if self.started {
            self.finalize_group();
        }
        if self.in_window > 0 {
            self.flush_window();
        }
    }

    /// The audit outcome so far; call [`AuditSink::finish`] first for a
    /// complete run.
    #[must_use]
    pub fn report(&self) -> AuditReport {
        let retained = self.violations.len() as u64;
        let total = retained + self.dropped_violations;
        AuditReport {
            workload: self.workload.clone(),
            policy: self.policy.clone(),
            accesses: self.access_index,
            faults: self.faults_total,
            fills: self.fills_total,
            violations: self.violations.clone(),
            dropped_violations: self.dropped_violations,
            total_violations: total,
            clean: total == 0,
        }
    }

    fn push_violation(
        &mut self,
        invariant: &str,
        access_index: u64,
        page: Option<PageId>,
        observed: String,
        expected: String,
    ) {
        if self.violations.len() < self.options.max_violations as usize {
            self.violations.push(AuditViolation {
                invariant: invariant.to_owned(),
                access_index,
                page: page.map(|p| p.value()),
                observed,
                expected,
            });
        } else {
            self.dropped_violations += 1;
        }
    }

    /// True once the warmup prefix has fully passed (actions trail
    /// their demand access, so the comparison is strict — identical to
    /// the windowed collector).
    fn in_steady_state(&self) -> bool {
        self.access_index > self.warmup
    }

    /// Decrements one tier's occupancy, reporting underflow under
    /// exclusive-residency semantics.
    fn decrement(&mut self, tier: MemoryKind, page: PageId) {
        let occupancy = match tier {
            MemoryKind::Dram => &mut self.dram_occupancy,
            MemoryKind::Nvm => &mut self.nvm_occupancy,
        };
        if *occupancy == 0 {
            let index = self.group.index;
            if self.exclusive_residency {
                self.push_violation(
                    "occupancy-delta",
                    index,
                    Some(page),
                    format!("page leaving an empty {tier:?} tier"),
                    "fill − evict − migration deltas keep occupancy non-negative".to_owned(),
                );
            }
        } else {
            *occupancy -= 1;
        }
    }

    fn increment(&mut self, tier: MemoryKind) {
        match tier {
            MemoryKind::Dram => self.dram_occupancy += 1,
            MemoryKind::Nvm => self.nvm_occupancy += 1,
        }
    }

    /// Group-scoped and boundary checks, run when the group is complete
    /// (next demand access or finish).
    fn finalize_group(&mut self) {
        let group = self.group;
        // demotion-pairing: outside a fault, each DRAM→NVM demotion is a
        // PromotionSwap and needs an NVM→DRAM promotion in the same
        // group; during a fault any demotion is a FaultFill (the fill's
        // displacement), matching the ledger's DemotionCause rules.
        if !group.is_fault && group.demotions > group.promotions {
            self.push_violation(
                "demotion-pairing",
                group.index,
                group.page,
                format!(
                    "{} DRAM→NVM demotion(s) vs {} NVM→DRAM promotion(s) in a non-fault access",
                    group.demotions, group.promotions
                ),
                "every PromotionSwap demotion pairs with a promotion in its access".to_owned(),
            );
        }
        // two-lru-window: a fired counter probe promises the probed
        // page's promotion in the same access, an unfired one forbids it.
        if let Some(probe) = group.probe {
            match probe.fired {
                Some(kind) => {
                    if !group.promoted_demand_page {
                        self.push_violation(
                            "two-lru-window",
                            group.index,
                            group.page,
                            format!("{kind:?} counter fired but no NVM→DRAM promotion followed"),
                            "a fired counter is followed by the page's promotion".to_owned(),
                        );
                    }
                }
                None => {
                    if group.promoted_demand_page {
                        self.push_violation(
                            "two-lru-window",
                            group.index,
                            group.page,
                            "page promoted without a fired counter".to_owned(),
                            "promotions only follow a fired counter probe".to_owned(),
                        );
                    }
                }
            }
        }
        // fill-fault: all faults answered once the group's actions are in.
        let imbalance = i128::from(self.fills_total) - i128::from(self.faults_total);
        if imbalance != self.reported_imbalance {
            self.push_violation(
                "fill-fault",
                group.index,
                group.page,
                format!(
                    "{} disk fill(s) for {} demand fault(s)",
                    self.fills_total, self.faults_total
                ),
                "every demand fault is answered by exactly one disk fill".to_owned(),
            );
            self.reported_imbalance = imbalance;
        }
        // occupancy-capacity: the resident set fits the tiers once the
        // group's displacements have all been applied.
        if self.exclusive_residency {
            if self.dram_occupancy > self.dram_capacity
                && self.dram_occupancy > self.reported_dram_level
            {
                self.reported_dram_level = self.dram_occupancy;
                let (occupancy, capacity) = (self.dram_occupancy, self.dram_capacity);
                self.push_violation(
                    "occupancy-capacity",
                    group.index,
                    group.page,
                    format!("{occupancy} resident DRAM pages in a {capacity}-page tier"),
                    "per-tier occupancy never exceeds capacity".to_owned(),
                );
            }
            if self.nvm_occupancy > self.nvm_capacity
                && self.nvm_occupancy > self.reported_nvm_level
            {
                self.reported_nvm_level = self.nvm_occupancy;
                let (occupancy, capacity) = (self.nvm_occupancy, self.nvm_capacity);
                self.push_violation(
                    "occupancy-capacity",
                    group.index,
                    group.page,
                    format!("{occupancy} resident NVM pages in a {capacity}-page tier"),
                    "per-tier occupancy never exceeds capacity".to_owned(),
                );
            }
        }
        self.group = AccessGroup::default();
    }

    /// Closes the current AMAT window: the event-priced mean access
    /// time must agree with the Eq. 1 closed form evaluated on the
    /// window's measured probabilities.
    fn flush_window(&mut self) {
        debug_assert!(self.in_window > 0);
        let w = self.window;
        let accesses = self.in_window;
        #[allow(clippy::cast_precision_loss)]
        let n = accesses as f64;
        #[allow(clippy::cast_precision_loss)]
        let ratio = |count: u64| count as f64 / n;
        let dram_hits = w.dram_read_hits + w.dram_write_hits;
        let nvm_hits = w.nvm_read_hits + w.nvm_write_hits;
        #[allow(clippy::cast_precision_loss)]
        let conditional = |part: u64, whole: u64| {
            if whole == 0 {
                0.0
            } else {
                part as f64 / whole as f64
            }
        };
        // The prediction side: the same construction the windowed
        // collector feeds into IntervalRecord::amat_ns, with migrations
        // counted by destination tier.
        let model = ModelParams::date2016(Probabilities {
            hit_dram: ratio(dram_hits),
            hit_nvm: ratio(nvm_hits),
            miss: ratio(w.faults),
            read_given_dram: conditional(w.dram_read_hits, dram_hits),
            read_given_nvm: conditional(w.nvm_read_hits, nvm_hits),
            migrate_to_dram: ratio(w.model_migrations_to_dram),
            migrate_to_nvm: ratio(w.model_migrations_to_nvm),
            disk_to_dram: conditional(w.fills_to_dram, w.faults),
            disk_to_nvm: conditional(w.fills_to_nvm, w.faults),
        });
        let expected = model.amat().value();
        // The priced side: every event category charged exactly what
        // the simulator charges it (fills and evictions are overlapped
        // and free; only cross-tier migrations move data).
        let dram_read = model.dram.read_latency.value();
        let dram_write = model.dram.write_latency.value();
        let nvm_read = model.nvm.read_latency.value();
        let nvm_write = model.nvm.write_latency.value();
        let disk = model.disk.access_latency.value();
        #[allow(clippy::cast_precision_loss)]
        let page_factor = model.page_factor as f64;
        #[allow(clippy::cast_precision_loss)]
        let priced = |count: u64, unit: f64| count as f64 * unit;
        let observed = (priced(w.dram_read_hits, dram_read)
            + priced(w.dram_write_hits, dram_write)
            + priced(w.nvm_read_hits, nvm_read)
            + priced(w.nvm_write_hits, nvm_write)
            + priced(w.faults, disk)
            + priced(
                w.priced_migrations_to_dram,
                page_factor * (nvm_read + dram_write),
            )
            + priced(
                w.priced_migrations_to_nvm,
                page_factor * (dram_read + nvm_write),
            ))
            / n;
        let tolerance =
            expected.abs().max(1.0) * (f64::from(self.options.amat_tolerance_ppm) / 1e6);
        if (observed - expected).abs() > tolerance {
            let last_access = self.window_start + accesses - 1;
            self.push_violation(
                "amat-window",
                last_access,
                None,
                format!(
                    "event-priced AMAT {observed:.3} ns over accesses {}..={last_access}",
                    self.window_start
                ),
                format!("Eq. 1 closed form {expected:.3} ns (±{tolerance:.3})"),
            );
        }
        self.in_window = 0;
        self.window = WindowTallies::default();
    }

    /// Handles one demand access (`Served` or `Fault`).
    fn on_demand(&mut self, access: PageAccess, served_from: Option<MemoryKind>) {
        if self.started {
            self.finalize_group();
        }
        // Deferred flush, exactly like the windowed collector: the
        // previous window closes only now, so a window-closing fault's
        // trailing actions were counted in *its* window.
        if self.options.window > 0 && self.in_window == self.options.window {
            self.flush_window();
        }
        let index = self.access_index;
        self.access_index += 1;
        self.started = true;
        let is_fault = served_from.is_none();
        if is_fault {
            self.faults_total += 1;
        }
        self.group = AccessGroup {
            index,
            page: Some(access.page),
            is_fault,
            demotions: 0,
            promotions: 0,
            promoted_demand_page: false,
            probe: None,
        };
        if index < self.warmup {
            return;
        }
        if self.in_window == 0 {
            self.window_start = index;
        }
        self.in_window += 1;
        match (served_from, access.kind) {
            (Some(MemoryKind::Dram), AccessKind::Read) => self.window.dram_read_hits += 1,
            (Some(MemoryKind::Dram), AccessKind::Write) => self.window.dram_write_hits += 1,
            (Some(MemoryKind::Nvm), AccessKind::Read) => self.window.nvm_read_hits += 1,
            (Some(MemoryKind::Nvm), AccessKind::Write) => self.window.nvm_write_hits += 1,
            (None, _) => self.window.faults += 1,
        }
    }

    fn on_action(&mut self, action: PolicyAction) {
        if !self.started {
            let (page, description) = match action {
                PolicyAction::FillFromDisk { page, .. } => (page, "disk fill"),
                PolicyAction::Migrate { page, .. } => (page, "migration"),
                PolicyAction::EvictToDisk { page, .. } => (page, "disk eviction"),
            };
            self.push_violation(
                "monotone-access",
                0,
                Some(page),
                format!("{description} before the first demand access"),
                "every action trails the demand access that caused it".to_owned(),
            );
            return;
        }
        match action {
            PolicyAction::FillFromDisk { into, .. } => {
                self.fills_total += 1;
                self.increment(into);
            }
            PolicyAction::Migrate { page, from, to } => {
                self.decrement(from, page);
                self.increment(to);
                match (from, to) {
                    (MemoryKind::Dram, MemoryKind::Nvm) => self.group.demotions += 1,
                    (MemoryKind::Nvm, MemoryKind::Dram) => {
                        self.group.promotions += 1;
                        if self.group.page == Some(page) {
                            self.group.promoted_demand_page = true;
                        }
                    }
                    (MemoryKind::Dram, MemoryKind::Dram) | (MemoryKind::Nvm, MemoryKind::Nvm) => {}
                }
            }
            PolicyAction::EvictToDisk { page, from } => self.decrement(from, page),
        }
        if !self.in_steady_state() {
            return;
        }
        match action {
            PolicyAction::FillFromDisk { into, .. } => match into {
                MemoryKind::Dram => self.window.fills_to_dram += 1,
                MemoryKind::Nvm => self.window.fills_to_nvm += 1,
            },
            PolicyAction::Migrate { from, to, .. } => {
                match to {
                    MemoryKind::Dram => self.window.model_migrations_to_dram += 1,
                    MemoryKind::Nvm => self.window.model_migrations_to_nvm += 1,
                }
                match (from, to) {
                    (MemoryKind::Nvm, MemoryKind::Dram) => {
                        self.window.priced_migrations_to_dram += 1;
                    }
                    (MemoryKind::Dram, MemoryKind::Nvm) => {
                        self.window.priced_migrations_to_nvm += 1;
                    }
                    (MemoryKind::Dram, MemoryKind::Dram) | (MemoryKind::Nvm, MemoryKind::Nvm) => {}
                }
            }
            PolicyAction::EvictToDisk { .. } => {}
        }
    }

    fn on_probe(&mut self, access: PageAccess, probe: NvmCounterProbe) {
        if !self.started {
            self.push_violation(
                "monotone-access",
                0,
                Some(access.page),
                "counter probe before the first demand access".to_owned(),
                "every probe trails the demand access that sampled it".to_owned(),
            );
            return;
        }
        let index = self.group.index;
        if self.group.probe.is_some() {
            self.push_violation(
                "monotone-access",
                index,
                Some(access.page),
                "second counter probe within one demand access".to_owned(),
                "at most one NVM counter probe per access".to_owned(),
            );
            return;
        }
        if self.group.page != Some(access.page) {
            self.push_violation(
                "monotone-access",
                index,
                Some(access.page),
                "counter probe for a page other than the demand page".to_owned(),
                "probes attach to the access that sampled them".to_owned(),
            );
            return;
        }
        if self.group.is_fault {
            self.push_violation(
                "monotone-access",
                index,
                Some(access.page),
                "counter probe on a faulting access".to_owned(),
                "NVM counters are only sampled on NVM hits".to_owned(),
            );
            return;
        }
        self.group.probe = Some(probe);
    }
}

impl EventSink for AuditSink {
    fn record(&mut self, event: SimEvent) {
        match event {
            SimEvent::Served { access, from } => self.on_demand(access, Some(from)),
            SimEvent::Fault { access } => self.on_demand(access, None),
            SimEvent::Action { action } => self.on_action(action),
            SimEvent::CounterProbe { access, probe } => self.on_probe(access, probe),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem_policy::CounterKind;
    use hybridmem_types::PageAccess;

    fn served(page: u64, from: MemoryKind) -> SimEvent {
        SimEvent::Served {
            access: PageAccess::read(PageId::new(page)),
            from,
        }
    }

    fn fault(page: u64) -> SimEvent {
        SimEvent::Fault {
            access: PageAccess::read(PageId::new(page)),
        }
    }

    fn fill(page: u64, into: MemoryKind) -> SimEvent {
        SimEvent::Action {
            action: PolicyAction::FillFromDisk {
                page: PageId::new(page),
                into,
            },
        }
    }

    fn migrate(page: u64, from: MemoryKind, to: MemoryKind) -> SimEvent {
        SimEvent::Action {
            action: PolicyAction::Migrate {
                page: PageId::new(page),
                from,
                to,
            },
        }
    }

    fn evict(page: u64, from: MemoryKind) -> SimEvent {
        SimEvent::Action {
            action: PolicyAction::EvictToDisk {
                page: PageId::new(page),
                from,
            },
        }
    }

    fn probe(page: u64, fired: Option<CounterKind>) -> SimEvent {
        SimEvent::CounterProbe {
            access: PageAccess::read(PageId::new(page)),
            probe: NvmCounterProbe {
                rank: 0,
                reads: 1,
                writes: 0,
                read_lost: 0,
                write_lost: 0,
                read_threshold: 1,
                write_threshold: 1,
                fired,
            },
        }
    }

    fn audit(events: &[SimEvent]) -> AuditReport {
        audit_with(AuditSink::new("w", "p", AuditOptions::default()), events)
    }

    fn audit_with(mut sink: AuditSink, events: &[SimEvent]) -> AuditReport {
        for &event in events {
            sink.record(event);
        }
        sink.finish();
        sink.report()
    }

    fn invariants(report: &AuditReport) -> Vec<&str> {
        report
            .violations
            .iter()
            .map(|v| v.invariant.as_str())
            .collect()
    }

    #[test]
    fn clean_stream_reports_zero_violations() {
        // Fault fill, a promotion swap with a fired probe, plain hits,
        // and a capacity-bound eviction: every law holds.
        let report = audit_with(
            AuditSink::new("w", "p", AuditOptions::default()).with_capacities(1, 2),
            &[
                fault(1),
                fill(1, MemoryKind::Nvm),
                fault(2),
                fill(2, MemoryKind::Nvm),
                served(1, MemoryKind::Nvm),
                probe(1, Some(CounterKind::Read)),
                migrate(1, MemoryKind::Nvm, MemoryKind::Dram),
                served(1, MemoryKind::Dram),
                fault(3),
                evict(2, MemoryKind::Nvm),
                fill(3, MemoryKind::Nvm),
                served(3, MemoryKind::Nvm),
                probe(3, None),
            ],
        );
        assert!(report.clean, "violations: {:?}", report.violations);
        assert_eq!(report.accesses, 6);
        assert_eq!(report.faults, 3);
        assert_eq!(report.fills, 3);
    }

    #[test]
    fn tampered_fill_fires_fill_fault_exactly_once() {
        // The fault at access 0 is never answered; every later boundary
        // sees the same imbalance, which resynchronization reports once.
        let report = audit(&[
            fault(1),
            served(1, MemoryKind::Nvm),
            served(1, MemoryKind::Nvm),
        ]);
        assert_eq!(invariants(&report), ["fill-fault"]);
        assert_eq!(report.violations[0].access_index, 0);
        assert_eq!(report.total_violations, 1);
    }

    #[test]
    fn spurious_fill_fires_fill_fault_exactly_once() {
        let report = audit(&[
            served(1, MemoryKind::Dram),
            fill(9, MemoryKind::Dram),
            served(1, MemoryKind::Dram),
        ]);
        assert_eq!(invariants(&report), ["fill-fault"]);
    }

    #[test]
    fn occupancy_overflow_fires_capacity_exactly_once() {
        let sink = AuditSink::new("w", "p", AuditOptions::default()).with_capacities(1, 1);
        let report = audit_with(
            sink,
            &[
                fault(1),
                fill(1, MemoryKind::Dram),
                fault(2),
                fill(2, MemoryKind::Dram),
                served(1, MemoryKind::Dram),
                served(2, MemoryKind::Dram),
            ],
        );
        assert_eq!(invariants(&report), ["occupancy-capacity"]);
        assert_eq!(
            report.violations[0].access_index, 1,
            "the overflowing fill's access"
        );
        assert_eq!(report.total_violations, 1);
    }

    #[test]
    fn underflow_fires_occupancy_delta() {
        let report = audit(&[served(1, MemoryKind::Dram), evict(1, MemoryKind::Dram)]);
        assert_eq!(invariants(&report), ["occupancy-delta"]);
        assert_eq!(report.violations[0].page, Some(1));
    }

    #[test]
    fn unpaired_demotion_fires_demotion_pairing() {
        let report = audit(&[
            fault(1),
            fill(1, MemoryKind::Dram),
            fault(2),
            fill(2, MemoryKind::Nvm),
            served(2, MemoryKind::Nvm),
            migrate(1, MemoryKind::Dram, MemoryKind::Nvm),
        ]);
        assert_eq!(invariants(&report), ["demotion-pairing"]);
        assert_eq!(report.violations[0].access_index, 2);
    }

    #[test]
    fn demotion_during_fault_is_a_fault_fill_not_a_violation() {
        let report = audit(&[
            fault(1),
            fill(1, MemoryKind::Dram),
            fault(2),
            migrate(1, MemoryKind::Dram, MemoryKind::Nvm),
            fill(2, MemoryKind::Dram),
        ]);
        assert!(report.clean, "violations: {:?}", report.violations);
    }

    #[test]
    fn fired_probe_without_promotion_fires_two_lru_window() {
        let report = audit(&[
            fault(1),
            fill(1, MemoryKind::Nvm),
            served(1, MemoryKind::Nvm),
            probe(1, Some(CounterKind::Read)),
        ]);
        assert_eq!(invariants(&report), ["two-lru-window"]);
        assert_eq!(report.violations[0].access_index, 1);
    }

    #[test]
    fn promotion_without_fired_probe_fires_two_lru_window() {
        let report = audit(&[
            fault(1),
            fill(1, MemoryKind::Nvm),
            served(1, MemoryKind::Nvm),
            probe(1, None),
            migrate(1, MemoryKind::Nvm, MemoryKind::Dram),
        ]);
        assert_eq!(invariants(&report), ["two-lru-window"]);
    }

    #[test]
    fn action_before_first_access_fires_monotone_access_and_is_dropped() {
        // The stray fill is reported once and ignored: it must not
        // poison the fill or occupancy books of the real run after it.
        let report = audit(&[
            fill(9, MemoryKind::Dram),
            fault(1),
            fill(1, MemoryKind::Dram),
            served(1, MemoryKind::Dram),
        ]);
        assert_eq!(invariants(&report), ["monotone-access"]);
        assert_eq!(report.fills, 1, "the stray fill is not booked");
    }

    #[test]
    fn probe_on_wrong_page_fires_monotone_access() {
        let report = audit(&[
            fault(1),
            fill(1, MemoryKind::Nvm),
            served(1, MemoryKind::Nvm),
            probe(2, None),
        ]);
        assert_eq!(invariants(&report), ["monotone-access"]);
    }

    #[test]
    fn same_module_migration_fires_amat_window() {
        // The closed form prices a migration the simulator charges
        // nothing for: the two sides of the AMAT law diverge by
        // PageFactor-scaled latencies, far past any tolerance.
        let report = audit(&[
            fault(1),
            fill(1, MemoryKind::Dram),
            served(1, MemoryKind::Dram),
            migrate(1, MemoryKind::Dram, MemoryKind::Dram),
        ]);
        assert_eq!(invariants(&report), ["amat-window"]);
        assert_eq!(report.violations[0].access_index, 1);
    }

    #[test]
    fn windowed_amat_attributes_the_violation_to_its_window() {
        let options = AuditOptions {
            window: 2,
            ..AuditOptions::default()
        };
        let report = audit_with(
            AuditSink::new("w", "p", options),
            &[
                fault(1),
                fill(1, MemoryKind::Dram),
                served(1, MemoryKind::Dram),
                // Window 1: the tampered access.
                served(1, MemoryKind::Dram),
                migrate(1, MemoryKind::Dram, MemoryKind::Dram),
                served(1, MemoryKind::Dram),
            ],
        );
        assert_eq!(invariants(&report), ["amat-window"]);
        assert_eq!(
            report.violations[0].access_index, 3,
            "last access of window 1"
        );
    }

    #[test]
    fn warmup_accesses_are_excluded_from_amat_but_not_conservation() {
        // A warmup-time same-module migration is invisible to the AMAT
        // law (no window is open), but a warmup-time unanswered fault
        // still breaks conservation.
        let clean_amat = audit_with(
            AuditSink::new("w", "p", AuditOptions::default()).with_warmup(2),
            &[
                fault(1),
                fill(1, MemoryKind::Dram),
                served(1, MemoryKind::Dram),
                migrate(1, MemoryKind::Dram, MemoryKind::Dram),
                served(1, MemoryKind::Dram),
            ],
        );
        assert!(clean_amat.clean, "violations: {:?}", clean_amat.violations);

        let broken = audit_with(
            AuditSink::new("w", "p", AuditOptions::default()).with_warmup(2),
            &[
                fault(1),
                served(1, MemoryKind::Nvm),
                served(1, MemoryKind::Nvm),
            ],
        );
        assert_eq!(invariants(&broken), ["fill-fault"]);
    }

    #[test]
    fn non_exclusive_residency_disables_the_occupancy_laws() {
        let sink = AuditSink::new("w", "dram-cache", AuditOptions::default())
            .with_capacities(1, 1)
            .with_exclusive_residency(false);
        // Cost-equivalent stream: a second cache-in of the same page
        // decrements NVM twice without a second fill — legal for
        // dram-cache, underflow anywhere else.
        let report = audit_with(
            sink,
            &[
                fault(1),
                fill(1, MemoryKind::Nvm),
                served(1, MemoryKind::Nvm),
                migrate(1, MemoryKind::Nvm, MemoryKind::Dram),
                served(1, MemoryKind::Nvm),
                migrate(1, MemoryKind::Nvm, MemoryKind::Dram),
            ],
        );
        assert!(report.clean, "violations: {:?}", report.violations);
    }

    #[test]
    fn violation_cap_counts_the_overflow() {
        let options = AuditOptions {
            max_violations: 1,
            ..AuditOptions::default()
        };
        let report = audit_with(
            AuditSink::new("w", "p", options),
            &[
                served(1, MemoryKind::Dram),
                evict(1, MemoryKind::Dram),
                evict(2, MemoryKind::Dram),
            ],
        );
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.dropped_violations, 1);
        assert_eq!(report.total_violations, 2);
        assert!(!report.clean);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut sink = AuditSink::new("w", "p", AuditOptions::default());
        sink.record(fault(1));
        sink.finish();
        sink.finish();
        assert_eq!(
            sink.report().total_violations,
            1,
            "only the unanswered fault"
        );
    }

    #[test]
    fn matrix_report_rolls_up_and_roundtrips() {
        let clean = audit(&[fault(1), fill(1, MemoryKind::Dram)]);
        let dirty = audit(&[served(1, MemoryKind::Dram), evict(1, MemoryKind::Dram)]);
        let matrix = AuditMatrixReport::new(vec![clean, dirty]);
        assert_eq!(matrix.schema, AUDIT_SCHEMA);
        assert_eq!(matrix.total_violations, 1);
        assert!(!matrix.clean);

        let mut bytes = Vec::new();
        write_audit_json(&mut bytes, &matrix).unwrap();
        let parsed: AuditMatrixReport = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(parsed, matrix);
    }
}
