//! The page-lifecycle ledger: per-page journey reconstruction with
//! migration provenance.
//!
//! The windowed collector ([`crate::observe`]) answers *"how is the run
//! going?"* in aggregate; the [`PageLedger`] answers *"why did this page
//! move?"*. It is an [`EventSink`] that replays the simulator's event
//! stream into per-page journeys: the fill that brought a page in, every
//! promotion with its Algorithm 1 provenance (the triggering access
//! index, which counter fired, its value vs. threshold, the page's NVM
//! queue rank), every demotion with its cause, lossy counter-window
//! resets, and the final disposition.
//!
//! # Bounded memory: deterministic top-K retention
//!
//! Full journeys for every page of a full-scale run would not fit in
//! memory, so the ledger keeps two tiers of state:
//!
//! * an **all-pages summary** — one small fixed-size [`PageSummary`] per
//!   touched page (the same order of state the policy itself holds), from
//!   which the ping-pong count and the migration-cause histogram in
//!   [`LedgerSummary`] are computed; and
//! * **detailed journeys** — bounded per-page event lists, retained only
//!   for the top-K pages. Whenever more than `2 × top_k` pages carry
//!   detail, the ledger prunes down to `top_k` using a deterministic
//!   ordering: **most migrations first, then most accesses, then the
//!   smallest page id** (the tie-break makes retention reproducible for
//!   pages with identical activity). A pruned page never regains detail —
//!   its summary keeps accumulating — so the retained set is a pure
//!   function of the event stream, never of timing. The focus page of
//!   [`LedgerOptions::focus`], if any, is exempt from pruning.
//!
//! Each detailed journey keeps the **first** [`LedgerOptions::max_events`]
//! events (the fill and early migrations are the informative part; the
//! final disposition lives in the summary) and counts the overflow in
//! [`PageRecord::dropped_events`].
//!
//! Every boundary in the ledger is access-index-based — wall-clock never
//! appears — so the JSONL export is byte-identical at any thread count,
//! exactly like the interval metrics stream (CI enforces both).

use std::io::Write;

use hybridmem_policy::{CounterKind, NvmCounterProbe, PolicyAction};
use hybridmem_types::{AccessKind, FxHashMap, FxHashSet, MemoryKind, PageId};
use serde::{Deserialize, Serialize};

use crate::{EventSink, SimEvent};

/// Configuration of a [`PageLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerOptions {
    /// Number of pages to retain detailed journeys for (floor 1).
    pub top_k: usize,
    /// Maximum journey events kept per detailed page; later events are
    /// counted in [`PageRecord::dropped_events`].
    pub max_events: usize,
    /// A page exempt from top-K pruning — `hybridmem trace-page`'s target.
    pub focus: Option<PageId>,
}

impl Default for LedgerOptions {
    fn default() -> Self {
        Self {
            top_k: 64,
            max_events: 32,
            focus: None,
        }
    }
}

/// Why a page was demoted DRAM→NVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DemotionCause {
    /// Displaced by a page fault filling into DRAM.
    FaultFill,
    /// Swapped out by a threshold-gated NVM→DRAM promotion.
    PromotionSwap,
}

/// Algorithm 1 provenance attached to a promotion: what the policy knew
/// at the access that fired the migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PromotionProvenance {
    /// Which counter crossed its threshold.
    pub counter: CounterKind,
    /// The counter's value after the triggering access's update.
    pub value: u32,
    /// The threshold the value exceeded.
    pub threshold: u32,
    /// The page's NVM queue rank (0 = MRU) before the triggering access.
    pub rank: u64,
}

/// One step of a page's journey, in event order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum PageEvent {
    /// Filled from disk after a fault.
    Fill {
        /// Index of the faulting demand access.
        access: u64,
        /// Tier the page landed in.
        into: MemoryKind,
    },
    /// Promoted NVM→DRAM.
    Promote {
        /// Index of the demand access that triggered the promotion.
        access: u64,
        /// Counter provenance; `None` for policies that do not report
        /// counter state (e.g. CLOCK-DWF's write-triggered migrations).
        provenance: Option<PromotionProvenance>,
    },
    /// Demoted DRAM→NVM.
    Demote {
        /// Index of the demand access whose handling displaced the page.
        access: u64,
        /// What displaced it.
        cause: DemotionCause,
    },
    /// Evicted to disk.
    Evict {
        /// Index of the demand access whose handling evicted the page.
        access: u64,
        /// Tier the page left.
        from: MemoryKind,
    },
    /// A lossy counter-window reset: the page slid past a
    /// `readperc`/`writeperc` boundary and a nonzero counter was zeroed.
    Reset {
        /// Index of the NVM hit at which the lazy reset applied.
        access: u64,
        /// Which counter lost progress.
        counter: CounterKind,
        /// The discarded counter value.
        lost: u32,
    },
}

/// Fixed-size per-page accumulator, kept for **every** touched page.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageSummary {
    /// Demand accesses to the page (hits + faults).
    pub accesses: u64,
    /// Demand reads.
    pub reads: u64,
    /// Demand writes.
    pub writes: u64,
    /// Fills from disk.
    pub fills: u64,
    /// Evictions to disk.
    pub evictions: u64,
    /// Promotions fired by the read counter.
    pub promotions_read: u64,
    /// Promotions fired by the write counter.
    pub promotions_write: u64,
    /// Promotions without counter provenance (non-probe policies).
    pub promotions_unattributed: u64,
    /// Demotions caused by fault fills.
    pub demotions_fault: u64,
    /// Demotions caused by promotion swaps.
    pub demotions_swap: u64,
    /// Lossy counter-window resets.
    pub resets: u64,
    /// Demotions of this page after it had already been promoted at
    /// least once — round trips between the tiers.
    pub ping_pongs: u64,
    /// Index of the page's first demand access.
    pub first_access: u64,
    /// Index of the page's most recent demand access.
    pub last_access: u64,
    /// Where the page ended the run; `None` = on disk (or never filled).
    pub final_tier: Option<MemoryKind>,
}

impl PageSummary {
    /// Total tier-to-tier migrations (promotions + demotions) — the
    /// primary top-K retention key.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.promotions_read
            + self.promotions_write
            + self.promotions_unattributed
            + self.demotions_fault
            + self.demotions_swap
    }
}

/// One detailed page in a [`LedgerReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageRecord {
    /// The page.
    pub page: u64,
    /// The all-run accumulator.
    pub summary: PageSummary,
    /// The journey's first [`LedgerOptions::max_events`] events.
    pub events: Vec<PageEvent>,
    /// Journey events beyond the per-page cap, counted not stored.
    pub dropped_events: u64,
}

/// Whole-run roll-up over **all** pages: the migration-cause histogram
/// and the ping-pong count the ISSUE's drill-down asks for.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedgerSummary {
    /// Distinct pages touched.
    pub pages: u64,
    /// Page faults (warmup included; the ledger sees the whole run).
    pub faults: u64,
    /// Promotions fired by the read counter.
    pub promotions_read: u64,
    /// Promotions fired by the write counter.
    pub promotions_write: u64,
    /// Promotions without counter provenance.
    pub promotions_unattributed: u64,
    /// Demotions caused by fault fills.
    pub demotions_fault: u64,
    /// Demotions caused by promotion swaps.
    pub demotions_swap: u64,
    /// Evictions to disk.
    pub evictions: u64,
    /// Lossy read-counter window resets.
    pub resets_read: u64,
    /// Lossy write-counter window resets.
    pub resets_write: u64,
    /// Pages that ping-ponged (were demoted after a promotion) at least
    /// once.
    pub ping_pong_pages: u64,
    /// Total ping-pong round trips across all pages.
    pub ping_pongs: u64,
    /// Pages whose detailed journey survived top-K retention.
    pub detailed_pages: u64,
    /// Pages whose detail was pruned (summaries kept).
    pub pruned_pages: u64,
}

/// The ledger's end-of-run export for one (workload, policy) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerReport {
    /// Workload name.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Total demand accesses observed (warmup included).
    pub accesses: u64,
    /// Length of the warmup prefix, for consumers that want to split it.
    pub warmup_accesses: u64,
    /// All-pages roll-up.
    pub summary: LedgerSummary,
    /// Detailed journeys, in retention order (most migrations, then most
    /// accesses, then smallest page id). The focus page, when set, is
    /// appended at the end if it did not place on its own.
    pub pages: Vec<PageRecord>,
}

/// Per-page detail state while the run is live.
#[derive(Debug, Default)]
struct PageDetail {
    events: Vec<PageEvent>,
    dropped: u64,
}

/// The event sink. See the [module docs](self) for the retention scheme.
#[derive(Debug)]
pub struct PageLedger {
    workload: String,
    policy: String,
    options: LedgerOptions,
    warmup_accesses: u64,
    /// Demand accesses seen so far == index of the *next* demand access.
    access_index: u64,
    /// Index of the demand access currently being handled.
    current_index: u64,
    /// True while handling a fault's actions (classifies demotions).
    in_fault: bool,
    summaries: FxHashMap<PageId, PageSummary>,
    details: FxHashMap<PageId, PageDetail>,
    /// Pages whose detail was pruned; they never regain it.
    pruned: FxHashSet<PageId>,
    /// `(page, access index)` of a threshold-firing probe in the current
    /// event group, so the matching Migrate action is not double-counted.
    probe_fired: Option<(PageId, u64)>,
    faults: u64,
    /// All-pages lossy reset totals by counter kind (independent of
    /// detail retention, unlike the per-page journey events).
    resets_read: u64,
    resets_write: u64,
}

impl PageLedger {
    /// Creates a ledger for one (workload, policy) cell. `warmup_accesses`
    /// is informational (recorded in the report); the ledger itself
    /// observes the whole run so journeys are complete.
    #[must_use]
    pub fn new(
        workload: impl Into<String>,
        policy: impl Into<String>,
        options: LedgerOptions,
        warmup_accesses: u64,
    ) -> Self {
        let options = LedgerOptions {
            top_k: options.top_k.max(1),
            ..options
        };
        Self {
            workload: workload.into(),
            policy: policy.into(),
            options,
            warmup_accesses,
            access_index: 0,
            current_index: 0,
            in_fault: false,
            summaries: FxHashMap::default(),
            details: FxHashMap::default(),
            pruned: FxHashSet::default(),
            probe_fired: None,
            faults: 0,
            resets_read: 0,
            resets_write: 0,
        }
    }

    /// The configured options (top-K floor applied).
    #[must_use]
    pub fn options(&self) -> LedgerOptions {
        self.options
    }

    fn summary_mut(&mut self, page: PageId) -> &mut PageSummary {
        self.summaries.entry(page).or_default()
    }

    /// Notes a demand access to `page`.
    fn on_demand(&mut self, page: PageId, write: bool) {
        self.current_index = self.access_index;
        self.access_index += 1;
        let index = self.current_index;
        let summary = self.summary_mut(page);
        if summary.accesses == 0 {
            summary.first_access = index;
        }
        summary.accesses += 1;
        summary.last_access = index;
        if write {
            summary.writes += 1;
        } else {
            summary.reads += 1;
        }
    }

    /// Appends a journey event to `page`'s detail, honouring the pruned
    /// set and the per-page cap, then rebalances retention.
    fn push_event(&mut self, page: PageId, event: PageEvent) {
        if self.pruned.contains(&page) {
            return;
        }
        let max_events = self.options.max_events;
        let detail = self.details.entry(page).or_default();
        if detail.events.len() < max_events {
            detail.events.push(event);
        } else {
            detail.dropped += 1;
        }
        if self.details.len() > self.options.top_k.saturating_mul(2) {
            self.prune();
        }
    }

    /// Deterministically shrinks the detailed set back to `top_k` pages:
    /// most migrations, then most accesses, then smallest page id win.
    fn prune(&mut self) {
        let mut ranked: Vec<PageId> = self.details.keys().copied().collect();
        let summaries = &self.summaries;
        ranked.sort_by(|a, b| Self::retention_order(summaries, *a, *b));
        for page in ranked.into_iter().skip(self.options.top_k) {
            if Some(page) == self.options.focus {
                continue;
            }
            self.details.remove(&page);
            self.pruned.insert(page);
        }
    }

    /// The documented retention order: migrations desc, accesses desc,
    /// page id asc.
    fn retention_order(
        summaries: &FxHashMap<PageId, PageSummary>,
        a: PageId,
        b: PageId,
    ) -> std::cmp::Ordering {
        let key = |page: PageId| {
            summaries
                .get(&page)
                .map_or((0, 0), |s| (s.migrations(), s.accesses))
        };
        let (am, aa) = key(a);
        let (bm, ba) = key(b);
        bm.cmp(&am)
            .then(ba.cmp(&aa))
            .then(a.value().cmp(&b.value()))
    }

    /// Finalizes the run into a [`LedgerReport`]. The ledger can keep
    /// observing afterwards, but reports are meant to be taken once at
    /// the end.
    #[must_use]
    pub fn finish(&mut self) -> LedgerReport {
        // Roll the all-pages summary up.
        let mut summary = LedgerSummary {
            pages: self.summaries.len() as u64,
            faults: self.faults,
            pruned_pages: self.pruned.len() as u64,
            ..LedgerSummary::default()
        };
        for s in self.summaries.values() {
            summary.promotions_read += s.promotions_read;
            summary.promotions_write += s.promotions_write;
            summary.promotions_unattributed += s.promotions_unattributed;
            summary.demotions_fault += s.demotions_fault;
            summary.demotions_swap += s.demotions_swap;
            summary.evictions += s.evictions;
            summary.ping_pongs += s.ping_pongs;
            if s.ping_pongs > 0 {
                summary.ping_pong_pages += 1;
            }
        }
        summary.resets_read = self.resets_read;
        summary.resets_write = self.resets_write;

        // Final top-K selection over the detailed pages, retention order.
        let mut ranked: Vec<PageId> = self.details.keys().copied().collect();
        let summaries = &self.summaries;
        ranked.sort_by(|a, b| Self::retention_order(summaries, *a, *b));
        ranked.truncate(self.options.top_k);
        if let Some(focus) = self.options.focus {
            if !ranked.contains(&focus) {
                ranked.push(focus);
            }
        }
        let pages: Vec<PageRecord> = ranked
            .into_iter()
            .map(|page| {
                let detail = self.details.get(&page);
                PageRecord {
                    page: page.value(),
                    summary: self.summaries.get(&page).copied().unwrap_or_default(),
                    events: detail.map(|d| d.events.clone()).unwrap_or_default(),
                    dropped_events: detail.map_or(0, |d| d.dropped),
                }
            })
            .collect();
        summary.detailed_pages = pages.len() as u64;

        LedgerReport {
            workload: self.workload.clone(),
            policy: self.policy.clone(),
            accesses: self.access_index,
            warmup_accesses: self.warmup_accesses,
            summary,
            pages,
        }
    }

    fn on_probe(&mut self, page: PageId, probe: NvmCounterProbe) {
        let index = self.current_index;
        if probe.read_lost > 0 {
            self.resets_read += 1;
            self.summary_mut(page).resets += 1;
            self.push_event(
                page,
                PageEvent::Reset {
                    access: index,
                    counter: CounterKind::Read,
                    lost: probe.read_lost,
                },
            );
        }
        if probe.write_lost > 0 {
            self.resets_write += 1;
            self.summary_mut(page).resets += 1;
            self.push_event(
                page,
                PageEvent::Reset {
                    access: index,
                    counter: CounterKind::Write,
                    lost: probe.write_lost,
                },
            );
        }
        if let Some(counter) = probe.fired {
            // The promotion's Migrate action follows this probe; record
            // the promotion here, where the provenance is, and let the
            // action handler skip the probed page's NVM→DRAM migrate.
            let (value, threshold) = match counter {
                CounterKind::Read => (probe.reads, probe.read_threshold),
                CounterKind::Write => (probe.writes, probe.write_threshold),
            };
            match counter {
                CounterKind::Read => self.summary_mut(page).promotions_read += 1,
                CounterKind::Write => self.summary_mut(page).promotions_write += 1,
            }
            self.push_event(
                page,
                PageEvent::Promote {
                    access: index,
                    provenance: Some(PromotionProvenance {
                        counter,
                        value,
                        threshold,
                        rank: probe.rank,
                    }),
                },
            );
        }
    }

    fn on_action(&mut self, action: PolicyAction) {
        let index = self.current_index;
        match action {
            PolicyAction::FillFromDisk { page, into } => {
                let summary = self.summary_mut(page);
                summary.fills += 1;
                summary.final_tier = Some(into);
                self.push_event(
                    page,
                    PageEvent::Fill {
                        access: index,
                        into,
                    },
                );
            }
            PolicyAction::EvictToDisk { page, from } => {
                let summary = self.summary_mut(page);
                summary.evictions += 1;
                summary.final_tier = None;
                self.push_event(
                    page,
                    PageEvent::Evict {
                        access: index,
                        from,
                    },
                );
            }
            PolicyAction::Migrate { page, from, to } => {
                match (from, to) {
                    (MemoryKind::Nvm, MemoryKind::Dram) => {
                        let summary = self.summary_mut(page);
                        summary.final_tier = Some(MemoryKind::Dram);
                        // A probed promotion was already recorded (with
                        // provenance) by `on_probe`; only unprobed
                        // promotions are recorded here.
                        if self.probe_fired != Some((page, index)) {
                            self.summary_mut(page).promotions_unattributed += 1;
                            self.push_event(
                                page,
                                PageEvent::Promote {
                                    access: index,
                                    provenance: None,
                                },
                            );
                        }
                    }
                    (MemoryKind::Dram, MemoryKind::Nvm) => {
                        let cause = if self.in_fault {
                            DemotionCause::FaultFill
                        } else {
                            DemotionCause::PromotionSwap
                        };
                        let summary = self.summary_mut(page);
                        summary.final_tier = Some(MemoryKind::Nvm);
                        match cause {
                            DemotionCause::FaultFill => summary.demotions_fault += 1,
                            DemotionCause::PromotionSwap => summary.demotions_swap += 1,
                        }
                        let promoted_before = summary.promotions_read
                            + summary.promotions_write
                            + summary.promotions_unattributed
                            > 0;
                        if promoted_before {
                            self.summary_mut(page).ping_pongs += 1;
                        }
                        self.push_event(
                            page,
                            PageEvent::Demote {
                                access: index,
                                cause,
                            },
                        );
                    }
                    // Same-tier "migrations" do not occur; record nothing.
                    _ => {}
                }
            }
        }
    }
}

impl EventSink for PageLedger {
    fn record(&mut self, event: SimEvent) {
        match event {
            SimEvent::Served { access, .. } => {
                self.in_fault = false;
                self.probe_fired = None;
                self.on_demand(access.page, access.kind == AccessKind::Write);
            }
            SimEvent::Fault { access } => {
                self.in_fault = true;
                self.probe_fired = None;
                self.on_demand(access.page, access.kind == AccessKind::Write);
                self.faults += 1;
            }
            SimEvent::CounterProbe { access, probe } => {
                if probe.fired.is_some() {
                    self.probe_fired = Some((access.page, self.current_index));
                }
                self.on_probe(access.page, probe);
            }
            SimEvent::Action { action } => self.on_action(action),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Writes one cell's ledger as JSON Lines: a header line (workload,
/// policy, totals, the all-pages [`LedgerSummary`]) followed by one line
/// per retained [`PageRecord`]. Deterministic byte-for-byte for a given
/// spec + seed, at any thread count.
///
/// # Errors
///
/// Propagates I/O errors from `writer`; serialization of the plain-data
/// report types cannot fail.
pub fn write_ledger_jsonl<W: Write>(writer: &mut W, report: &LedgerReport) -> std::io::Result<()> {
    #[derive(Serialize)]
    struct Header<'a> {
        workload: &'a str,
        policy: &'a str,
        accesses: u64,
        warmup_accesses: u64,
        summary: &'a LedgerSummary,
    }
    let header = Header {
        workload: &report.workload,
        policy: &report.policy,
        accesses: report.accesses,
        warmup_accesses: report.warmup_accesses,
        summary: &report.summary,
    };
    let line = serde_json::to_string(&header).map_err(std::io::Error::other)?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    for page in &report.pages {
        let line = serde_json::to_string(page).map_err(std::io::Error::other)?;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem_types::PageAccess;

    fn served(page: u64, from: MemoryKind) -> SimEvent {
        SimEvent::Served {
            access: PageAccess::read(PageId::new(page)),
            from,
        }
    }

    fn fault(page: u64) -> SimEvent {
        SimEvent::Fault {
            access: PageAccess::read(PageId::new(page)),
        }
    }

    fn action(action: PolicyAction) -> SimEvent {
        SimEvent::Action { action }
    }

    fn probe_event(page: u64, probe: NvmCounterProbe) -> SimEvent {
        SimEvent::CounterProbe {
            access: PageAccess::read(PageId::new(page)),
            probe,
        }
    }

    fn firing_probe(kind: CounterKind, value: u32, threshold: u32, rank: u64) -> NvmCounterProbe {
        NvmCounterProbe {
            rank,
            reads: if kind == CounterKind::Read { value } else { 0 },
            writes: if kind == CounterKind::Write { value } else { 0 },
            read_lost: 0,
            write_lost: 0,
            read_threshold: threshold,
            write_threshold: threshold,
            fired: Some(kind),
        }
    }

    fn migrate(page: u64, from: MemoryKind, to: MemoryKind) -> PolicyAction {
        PolicyAction::Migrate {
            page: PageId::new(page),
            from,
            to,
        }
    }

    #[test]
    fn probed_promotion_is_recorded_once_with_provenance() {
        let mut ledger = PageLedger::new("w", "p", LedgerOptions::default(), 0);
        // NVM hit fires the read counter; the simulator emits
        // Served → CounterProbe → Migrate(victim ↓) → Migrate(page ↑).
        ledger.record(served(7, MemoryKind::Nvm));
        ledger.record(probe_event(7, firing_probe(CounterKind::Read, 7, 6, 2)));
        ledger.record(action(migrate(3, MemoryKind::Dram, MemoryKind::Nvm)));
        ledger.record(action(migrate(7, MemoryKind::Nvm, MemoryKind::Dram)));
        let report = ledger.finish();
        assert_eq!(report.summary.promotions_read, 1);
        assert_eq!(report.summary.promotions_unattributed, 0);
        assert_eq!(report.summary.demotions_swap, 1);
        assert_eq!(report.summary.demotions_fault, 0);

        let hot = report.pages.iter().find(|r| r.page == 7).unwrap();
        assert_eq!(hot.summary.final_tier, Some(MemoryKind::Dram));
        let promote = hot
            .events
            .iter()
            .find_map(|e| match e {
                PageEvent::Promote { access, provenance } => Some((*access, *provenance)),
                _ => None,
            })
            .expect("a promote event");
        assert_eq!(promote.0, 0, "triggered by the first demand access");
        let provenance = promote.1.expect("probed promotions carry provenance");
        assert_eq!(provenance.counter, CounterKind::Read);
        assert_eq!(provenance.value, 7);
        assert_eq!(provenance.threshold, 6);
        assert_eq!(provenance.rank, 2);
    }

    #[test]
    fn unprobed_promotions_and_fault_demotions_are_classified() {
        let mut ledger = PageLedger::new("w", "p", LedgerOptions::default(), 0);
        // CLOCK-DWF-style promotion: Served then a bare Migrate.
        ledger.record(served(1, MemoryKind::Nvm));
        ledger.record(action(migrate(1, MemoryKind::Nvm, MemoryKind::Dram)));
        // A fault displaces page 1 back to NVM: ping-pong.
        ledger.record(fault(2));
        ledger.record(action(migrate(1, MemoryKind::Dram, MemoryKind::Nvm)));
        ledger.record(action(PolicyAction::FillFromDisk {
            page: PageId::new(2),
            into: MemoryKind::Dram,
        }));
        let report = ledger.finish();
        assert_eq!(report.summary.promotions_unattributed, 1);
        assert_eq!(report.summary.demotions_fault, 1);
        assert_eq!(report.summary.ping_pongs, 1);
        assert_eq!(report.summary.ping_pong_pages, 1);
        assert_eq!(report.summary.faults, 1);
        let p1 = report.pages.iter().find(|r| r.page == 1).unwrap();
        assert!(matches!(
            p1.events.as_slice(),
            [
                PageEvent::Promote {
                    access: 0,
                    provenance: None
                },
                PageEvent::Demote {
                    access: 1,
                    cause: DemotionCause::FaultFill
                }
            ]
        ));
        let p2 = report.pages.iter().find(|r| r.page == 2).unwrap();
        assert_eq!(p2.summary.fills, 1);
        assert_eq!(p2.summary.final_tier, Some(MemoryKind::Dram));
    }

    #[test]
    fn lossy_resets_are_counted_globally_and_per_page() {
        let mut ledger = PageLedger::new("w", "p", LedgerOptions::default(), 0);
        ledger.record(served(5, MemoryKind::Nvm));
        ledger.record(probe_event(
            5,
            NvmCounterProbe {
                rank: 9,
                reads: 1,
                writes: 0,
                read_lost: 4,
                write_lost: 2,
                read_threshold: 6,
                write_threshold: 12,
                fired: None,
            },
        ));
        let report = ledger.finish();
        assert_eq!(report.summary.resets_read, 1);
        assert_eq!(report.summary.resets_write, 1);
        let page = report.pages.iter().find(|r| r.page == 5).unwrap();
        assert_eq!(page.summary.resets, 2);
        assert!(matches!(
            page.events[0],
            PageEvent::Reset {
                counter: CounterKind::Read,
                lost: 4,
                ..
            }
        ));
    }

    #[test]
    fn top_k_retention_is_deterministic_with_documented_tie_breaks() {
        let options = LedgerOptions {
            top_k: 2,
            max_events: 8,
            focus: None,
        };
        let mut ledger = PageLedger::new("w", "p", options, 0);
        // Page 30 collects the most migrations, pages 10 and 20 tie on
        // migrations but 20 sees more accesses; then two cold fills push
        // the detailed set past 2 × top_k and force a prune.
        for page in [30u64, 20, 10] {
            ledger.record(fault(page));
            ledger.record(action(PolicyAction::FillFromDisk {
                page: PageId::new(page),
                into: MemoryKind::Dram,
            }));
        }
        for _ in 0..3 {
            ledger.record(served(30, MemoryKind::Nvm));
            ledger.record(action(migrate(30, MemoryKind::Nvm, MemoryKind::Dram)));
            ledger.record(served(30, MemoryKind::Dram));
            ledger.record(action(migrate(30, MemoryKind::Dram, MemoryKind::Nvm)));
        }
        ledger.record(served(20, MemoryKind::Nvm));
        ledger.record(action(migrate(20, MemoryKind::Nvm, MemoryKind::Dram)));
        ledger.record(served(20, MemoryKind::Dram));
        ledger.record(served(10, MemoryKind::Nvm));
        ledger.record(action(migrate(10, MemoryKind::Nvm, MemoryKind::Dram)));
        for page in [40u64, 50] {
            ledger.record(fault(page));
            ledger.record(action(PolicyAction::FillFromDisk {
                page: PageId::new(page),
                into: MemoryKind::Dram,
            }));
        }
        let report = ledger.finish();
        let retained: Vec<u64> = report.pages.iter().map(|r| r.page).collect();
        assert_eq!(
            retained,
            vec![30, 20],
            "most migrations first, then accesses break the tie"
        );
        assert_eq!(report.summary.detailed_pages, 2);
        assert_eq!(report.summary.pruned_pages, 3);
        // Pruned pages keep their summaries in the roll-up.
        assert_eq!(report.summary.pages, 5);
    }

    #[test]
    fn focus_page_survives_pruning_and_event_caps_count_drops() {
        let options = LedgerOptions {
            top_k: 1,
            max_events: 2,
            focus: Some(PageId::new(99)),
        };
        let mut ledger = PageLedger::new("w", "p", options, 0);
        ledger.record(fault(99));
        ledger.record(action(PolicyAction::FillFromDisk {
            page: PageId::new(99),
            into: MemoryKind::Dram,
        }));
        // Busy unrelated pages would normally push 99 out of the top-K.
        for page in 1..=6u64 {
            ledger.record(served(page, MemoryKind::Nvm));
            ledger.record(action(migrate(page, MemoryKind::Nvm, MemoryKind::Dram)));
            ledger.record(served(page, MemoryKind::Dram));
            ledger.record(action(migrate(page, MemoryKind::Dram, MemoryKind::Nvm)));
        }
        // Three more journey events for 99: only one fits under the cap.
        ledger.record(served(99, MemoryKind::Dram));
        ledger.record(action(migrate(99, MemoryKind::Dram, MemoryKind::Nvm)));
        ledger.record(served(99, MemoryKind::Nvm));
        ledger.record(action(migrate(99, MemoryKind::Nvm, MemoryKind::Dram)));
        ledger.record(served(99, MemoryKind::Nvm));
        ledger.record(action(migrate(99, MemoryKind::Nvm, MemoryKind::Dram)));
        let report = ledger.finish();
        let focus = report
            .pages
            .iter()
            .find(|r| r.page == 99)
            .expect("focus page always reported");
        assert_eq!(focus.events.len(), 2, "per-page cap");
        assert!(focus.dropped_events >= 1, "overflow is counted");
    }

    #[test]
    fn jsonl_export_has_a_header_line_then_one_line_per_page() {
        let mut ledger = PageLedger::new("bodytrack", "two-lru", LedgerOptions::default(), 100);
        ledger.record(fault(1));
        ledger.record(action(PolicyAction::FillFromDisk {
            page: PageId::new(1),
            into: MemoryKind::Dram,
        }));
        let report = ledger.finish();
        let mut bytes = Vec::new();
        write_ledger_jsonl(&mut bytes, &report).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + report.pages.len());
        let header: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(header["workload"], "bodytrack");
        assert_eq!(header["policy"], "two-lru");
        assert_eq!(header["warmup_accesses"], 100);
        let page: PageRecord = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(page.page, 1);
        assert_eq!(page.summary.fills, 1);
    }
}
