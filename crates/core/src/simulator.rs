//! The hybrid-memory simulator: replays a page-granular trace through a
//! policy and charges every consequence against the device models.

use hybridmem_device::{
    AccessSource, DiskCharacteristics, MemoryCharacteristics, MemoryModule, MigrationEngine,
    WearTracker,
};
use hybridmem_policy::{AccessOutcome, BatchOutcomes, BatchStep, HybridPolicy, PolicyAction};
use hybridmem_types::{AccessKind, MemoryKind, Nanoseconds, PageAccess, PageCount};

use crate::{
    Counts, EnergyBreakdown, EventSink, LatencyBreakdown, NvmWriteBreakdown, SimEvent,
    SimulationReport, TimeModel, WearSummary,
};

/// Trace-driven simulator for one policy over one hybrid memory.
///
/// The simulator is the *accountant*: the policy decides placement and
/// migration; the simulator prices each decision using the
/// [`MemoryModule`]s, the [`MigrationEngine`], and the disk model, and
/// tracks NVM wear. Latency follows Eq. 1's structure (hit service time,
/// disk time on faults, `PageFactor` accesses per migration) and energy
/// follows Eq. 2 + Eq. 3.
///
/// # Examples
///
/// ```
/// use hybridmem_core::HybridSimulator;
/// use hybridmem_policy::{SingleTierPolicy};
/// use hybridmem_types::{PageAccess, PageCount, PageId};
///
/// let policy = SingleTierPolicy::dram_only(PageCount::new(8))?;
/// let mut sim = HybridSimulator::with_date2016_devices(Box::new(policy));
/// sim.step(PageAccess::read(PageId::new(1)));
/// sim.step(PageAccess::read(PageId::new(1)));
/// let report = sim.into_report("quickstart");
/// assert_eq!(report.counts.requests, 2);
/// assert_eq!(report.counts.faults, 1);
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
pub struct HybridSimulator {
    policy: Box<dyn HybridPolicy>,
    dram: MemoryModule,
    nvm: MemoryModule,
    disk: DiskCharacteristics,
    engine: MigrationEngine,
    wear: WearTracker,
    time_model: TimeModel,
    counts: Counts,
    latency: LatencyBreakdown,
    energy_page_faults_nj: f64,
    energy_migrations_nj: f64,
    nvm_writes: NvmWriteBreakdown,
    footprint: hybridmem_types::FxHashSet<hybridmem_types::PageId>,
    static_scale: f64,
    density_hint: Option<f64>,
    event_sink: Option<Box<dyn EventSink>>,
}

impl HybridSimulator {
    /// Creates a simulator with explicit device models. Module capacities
    /// are taken from the policy's [`HybridPolicy::capacity`].
    #[must_use]
    pub fn new(
        policy: Box<dyn HybridPolicy>,
        dram_characteristics: MemoryCharacteristics,
        nvm_characteristics: MemoryCharacteristics,
        disk: DiskCharacteristics,
        engine: MigrationEngine,
        time_model: TimeModel,
    ) -> Self {
        let dram = MemoryModule::new(
            MemoryKind::Dram,
            policy.capacity(MemoryKind::Dram),
            dram_characteristics,
        );
        let nvm = MemoryModule::new(
            MemoryKind::Nvm,
            policy.capacity(MemoryKind::Nvm),
            nvm_characteristics,
        );
        Self {
            policy,
            dram,
            nvm,
            disk,
            engine,
            wear: WearTracker::new(),
            time_model,
            counts: Counts::default(),
            latency: LatencyBreakdown::default(),
            energy_page_faults_nj: 0.0,
            energy_migrations_nj: 0.0,
            nvm_writes: NvmWriteBreakdown::default(),
            footprint: hybridmem_types::FxHashSet::default(),
            static_scale: 1.0,
            density_hint: None,
            event_sink: None,
        }
    }

    /// Installs an [`EventSink`] observing every simulation event. Replaces
    /// any previously installed sink.
    pub fn set_event_sink(&mut self, sink: Box<dyn EventSink>) {
        self.event_sink = Some(sink);
    }

    /// Removes and returns the installed event sink, if any — downcast it
    /// via [`EventSink::as_any`] to read the collected data.
    pub fn take_event_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.event_sink.take()
    }

    /// Mutable access to the installed sink without removing it —
    /// downcast via [`EventSink::as_any_mut`] to drain a collector
    /// incrementally while the run continues (the `observe` streaming
    /// path).
    pub fn event_sink_mut(&mut self) -> Option<&mut dyn EventSink> {
        self.event_sink.as_deref_mut()
    }

    #[inline]
    fn emit(&mut self, event: SimEvent) {
        if let Some(sink) = &mut self.event_sink {
            sink.record(event);
        }
    }

    /// Supplies the workload's true pages-per-access density for the
    /// duration model, overriding the measured `footprint / requests` ratio
    /// (which a scaled run with a footprint floor distorts).
    ///
    /// # Panics
    ///
    /// Panics when `density` is not finite-positive.
    pub fn set_density_hint(&mut self, density: f64) {
        assert!(
            density.is_finite() && density > 0.0,
            "density must be positive, got {density}"
        );
        self.density_hint = Some(density);
    }

    /// Declares that the simulated memory stands in for one `scale` times
    /// larger (used when a workload was scaled down for tractability):
    /// static power is multiplied by this factor so the static/dynamic
    /// balance matches the full-size system. Defaults to 1.0.
    ///
    /// # Panics
    ///
    /// Panics when `scale` is not finite-positive.
    pub fn set_static_scale(&mut self, scale: f64) {
        assert!(
            scale.is_finite() && scale > 0.0,
            "static scale must be positive, got {scale}"
        );
        self.static_scale = scale;
    }

    /// Resets all accounting (counters, latency, energy, wear, module
    /// statistics, and the observed footprint) while keeping the policy and
    /// memory state. Call after driving warmup traffic so reports reflect
    /// the steady state — mirroring the paper's use of "the largest dataset
    /// available in order to minimize the effect of starting from cold
    /// memory".
    pub fn reset_accounting(&mut self) {
        self.counts = Counts::default();
        self.latency = LatencyBreakdown::default();
        self.energy_page_faults_nj = 0.0;
        self.energy_migrations_nj = 0.0;
        self.nvm_writes = NvmWriteBreakdown::default();
        self.wear = WearTracker::new();
        self.footprint.clear();
        self.dram.reset_stats();
        self.nvm.reset_stats();
    }

    /// Creates a simulator with the paper's Table IV / Table II device
    /// constants and the default [`TimeModel`].
    #[must_use]
    pub fn with_date2016_devices(policy: Box<dyn HybridPolicy>) -> Self {
        Self::new(
            policy,
            MemoryCharacteristics::dram_date2016(),
            MemoryCharacteristics::pcm_date2016(),
            DiskCharacteristics::hdd_date2016(),
            MigrationEngine::new(),
            TimeModel::date2016(),
        )
    }

    /// The policy under simulation.
    #[must_use]
    pub fn policy(&self) -> &dyn HybridPolicy {
        self.policy.as_ref()
    }

    fn module_mut(&mut self, kind: MemoryKind) -> &mut MemoryModule {
        match kind {
            MemoryKind::Dram => &mut self.dram,
            MemoryKind::Nvm => &mut self.nvm,
        }
    }

    /// Drives one demand access through the policy and accounts for it.
    pub fn step(&mut self, access: PageAccess) {
        let outcome = self.policy.on_access(access);
        self.account(access, &outcome);
    }

    /// Charges one decided access against the device models. Shared by the
    /// serial ([`step`](Self::step)) and batched
    /// ([`run_slice_batched`](Self::run_slice_batched)) drivers so both
    /// perform the identical per-access accounting — same floating-point
    /// accumulation order, same event-emission order — and stay
    /// byte-identical in every output.
    fn account(&mut self, access: PageAccess, outcome: &AccessOutcome) {
        self.counts.requests += 1;
        match access.kind {
            AccessKind::Read => self.counts.reads += 1,
            AccessKind::Write => self.counts.writes += 1,
        }
        self.footprint.insert(access.page);

        // Demand service (Eq. 1/2, hit terms).
        match outcome.served_from {
            Some(kind) => {
                self.emit(SimEvent::Served { access, from: kind });
                let cost = self
                    .module_mut(kind)
                    .record_access(access.kind, AccessSource::Request);
                self.latency.requests += cost.latency;
                match (kind, access.kind) {
                    (MemoryKind::Dram, AccessKind::Read) => self.counts.dram_read_hits += 1,
                    (MemoryKind::Dram, AccessKind::Write) => self.counts.dram_write_hits += 1,
                    (MemoryKind::Nvm, AccessKind::Read) => self.counts.nvm_read_hits += 1,
                    (MemoryKind::Nvm, AccessKind::Write) => {
                        self.counts.nvm_write_hits += 1;
                        self.nvm_writes.requests += 1;
                        self.wear.record_page_write(access.page, 1);
                    }
                }
            }
            None => {
                // Page fault: the OS sees the disk latency (Eq. 1, term 3).
                debug_assert!(outcome.fault);
                self.emit(SimEvent::Fault { access });
                self.latency.faults += self.disk.access_latency;
            }
        }
        if outcome.fault {
            self.counts.faults += 1;
        }
        // Provenance: the policy's counter-state snapshot for this NVM
        // hit precedes the promotion actions it explains.
        if let Some(probe) = outcome.probe {
            self.emit(SimEvent::CounterProbe { access, probe });
        }

        // Physical consequences.
        for action in &outcome.actions {
            self.emit(SimEvent::Action { action: *action });
            match *action {
                PolicyAction::Migrate { page, from, to } => {
                    let cost = match (from, to) {
                        (MemoryKind::Nvm, MemoryKind::Dram) => {
                            self.counts.migrations_to_dram += 1;
                            self.engine.migrate_page(&mut self.nvm, &mut self.dram)
                        }
                        (MemoryKind::Dram, MemoryKind::Nvm) => {
                            self.counts.migrations_to_nvm += 1;
                            let cost = self.engine.migrate_page(&mut self.dram, &mut self.nvm);
                            self.nvm_writes.migrations += cost.destination_accesses;
                            self.wear.record_page_write(page, cost.destination_accesses);
                            cost
                        }
                        // Same-module "migrations" are policy bugs; charge
                        // nothing but keep the run alive in release builds.
                        _ => {
                            debug_assert!(false, "migration within one module: {action:?}");
                            continue;
                        }
                    };
                    self.latency.migrations += cost.latency;
                    self.energy_migrations_nj += cost.energy.value();
                }
                PolicyAction::FillFromDisk { page, into } => {
                    match into {
                        MemoryKind::Dram => self.counts.fills_to_dram += 1,
                        MemoryKind::Nvm => self.counts.fills_to_nvm += 1,
                    }
                    let engine = self.engine;
                    let cost = engine.fill_from_disk(self.module_mut(into));
                    if into == MemoryKind::Nvm {
                        self.nvm_writes.page_faults += cost.destination_accesses;
                        self.wear.record_page_write(page, cost.destination_accesses);
                    }
                    // Fill latency is overlapped with the disk transfer
                    // (already charged as fault latency); energy counts.
                    self.energy_page_faults_nj += cost.energy.value();
                }
                PolicyAction::EvictToDisk { .. } => {
                    // Page-out via DMA overlapped with the disk write; the
                    // paper charges no memory-side cost for it.
                    self.counts.evictions_to_disk += 1;
                }
            }
        }
    }

    /// Runs a whole trace.
    pub fn run<I: IntoIterator<Item = PageAccess>>(&mut self, trace: I) {
        for access in trace {
            self.step(access);
        }
    }

    /// Replays a materialized trace slice without cloning or re-generating
    /// it — the replay path for traces shared through
    /// [`TraceCache`](crate::TraceCache).
    pub fn run_slice(&mut self, trace: &[PageAccess]) {
        for &access in trace {
            self.step(access);
        }
    }

    /// Accesses handed to the policy per [`HybridPolicy::on_access_batch`]
    /// call by [`run_slice_batched`](Self::run_slice_batched). Large enough
    /// to amortize the virtual dispatch, small enough that the reused
    /// [`BatchOutcomes`] stays cache-resident.
    pub const BATCH_RECORDS: usize = 1024;

    /// Replays a trace slice through the policy's batch entry point.
    ///
    /// Produces output **byte-identical** to [`run_slice`](Self::run_slice):
    /// every access still flows through the same per-access accounting
    /// (`account`), in trace order, so counters, float accumulation, and
    /// event emission are exactly those of the serial driver — only the
    /// policy dispatch is amortized. The serial path remains the
    /// determinism oracle; `tests/policy_comparison.rs` asserts equality
    /// over the paper matrix.
    pub fn run_slice_batched(&mut self, trace: &[PageAccess]) {
        let mut out = BatchOutcomes::with_capacity(Self::BATCH_RECORDS);
        for chunk in trace.chunks(Self::BATCH_RECORDS) {
            out.clear();
            self.policy.on_access_batch(chunk, &mut out);
            debug_assert_eq!(
                out.len(),
                chunk.len(),
                "policy {} returned {} outcomes for a batch of {}",
                self.policy.name(),
                out.len(),
                chunk.len()
            );
            let mut detailed = out.detailed().iter();
            for (&access, step) in chunk.iter().zip(out.steps()) {
                match step {
                    BatchStep::DramHit => {
                        self.account(access, &AccessOutcome::hit(MemoryKind::Dram));
                    }
                    BatchStep::NvmHit => {
                        self.account(access, &AccessOutcome::hit(MemoryKind::Nvm));
                    }
                    BatchStep::Detailed => {
                        let outcome = detailed
                            .next()
                            .expect("BatchOutcomes tape and table agree by construction");
                        self.account(access, outcome);
                    }
                }
            }
        }
    }

    /// Finishes the run and produces the report.
    #[must_use]
    pub fn into_report(self, workload: impl Into<String>) -> SimulationReport {
        let footprint_pages = self.footprint.len() as u64;
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let duration_pages = match self.density_hint {
            Some(density) => (density * self.counts.requests as f64).round() as u64,
            None => footprint_pages,
        };
        let duration_ns = self
            .time_model
            .duration_ns(duration_pages, self.counts.requests);
        let static_power_nj_s =
            (self.dram.static_power_nj_s() + self.nvm.static_power_nj_s()) * self.static_scale;
        let static_energy = self.time_model.static_energy_per_request(
            static_power_nj_s,
            duration_pages,
            self.counts.requests,
        ) * {
            #[allow(clippy::cast_precision_loss)]
            {
                self.counts.requests as f64
            }
        };

        let dynamic = self.dram.stats().request.energy + self.nvm.stats().request.energy;
        let energy = EnergyBreakdown {
            static_energy,
            dynamic,
            page_faults: hybridmem_types::Nanojoules::new(self.energy_page_faults_nj),
            migrations: hybridmem_types::Nanojoules::new(self.energy_migrations_nj),
        };

        let wear = WearSummary {
            max_page_wear: self.wear.max_wear(),
            mean_page_wear: self.wear.mean_wear(),
            imbalance: self.wear.imbalance(),
        };

        SimulationReport {
            policy: self.policy.name().to_owned(),
            workload: workload.into(),
            dram_pages: self.dram.capacity().value(),
            nvm_pages: self.nvm.capacity().value(),
            footprint_pages,
            counts: self.counts,
            latency: self.latency,
            energy,
            nvm_writes: self.nvm_writes,
            wear,
            dram_stats: *self.dram.stats(),
            nvm_stats: *self.nvm.stats(),
            duration_ns,
        }
    }

    /// DRAM capacity (pages) of the simulated memory.
    #[must_use]
    pub fn dram_capacity(&self) -> PageCount {
        self.dram.capacity()
    }

    /// NVM capacity (pages) of the simulated memory.
    #[must_use]
    pub fn nvm_capacity(&self) -> PageCount {
        self.nvm.capacity()
    }

    /// Latency accounted so far (diagnostics; totals move as the run
    /// progresses).
    #[must_use]
    pub fn latency_so_far(&self) -> Nanoseconds {
        self.latency.total()
    }
}

impl std::fmt::Debug for HybridSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridSimulator")
            .field("policy", &self.policy.name())
            .field("dram_pages", &self.dram.capacity().value())
            .field("nvm_pages", &self.nvm.capacity().value())
            .field("requests", &self.counts.requests)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem_policy::{ClockDwfPolicy, SingleTierPolicy, TwoLruConfig, TwoLruPolicy};
    use hybridmem_types::{PageId, PAGE_FACTOR};

    fn two_lru(dram: u64, nvm: u64) -> HybridSimulator {
        let config = TwoLruConfig::new(PageCount::new(dram), PageCount::new(nvm)).unwrap();
        HybridSimulator::with_date2016_devices(Box::new(TwoLruPolicy::new(config)))
    }

    #[test]
    fn fault_charges_disk_latency_and_fill_energy() {
        let mut sim = two_lru(2, 4);
        sim.step(PageAccess::read(PageId::new(1)));
        let report = sim.into_report("t");
        assert_eq!(report.counts.faults, 1);
        assert_eq!(report.counts.fills_to_dram, 1);
        // Latency: only the 5 ms disk access.
        assert!((report.latency.faults.value() - 5e6).abs() < 1e-6);
        assert!(report.latency.requests.is_zero());
        // Energy: PageFactor DRAM writes for the fill.
        let expected = PAGE_FACTOR as f64 * 3.2;
        assert!((report.energy.page_faults.value() - expected).abs() < 1e-6);
    }

    #[test]
    fn dram_hit_charges_dram_latency() {
        let mut sim = two_lru(2, 4);
        sim.step(PageAccess::read(PageId::new(1)));
        sim.step(PageAccess::write(PageId::new(1)));
        let report = sim.into_report("t");
        assert_eq!(report.counts.dram_write_hits, 1);
        assert!((report.latency.requests.value() - 50.0).abs() < 1e-9);
        assert!((report.energy.dynamic.value() - 3.2).abs() < 1e-9);
    }

    #[test]
    fn migration_costs_match_eq1_terms() {
        // DRAM=1 so the second fault demotes the first page (D→N).
        let mut sim = two_lru(1, 4);
        sim.step(PageAccess::read(PageId::new(1)));
        sim.step(PageAccess::read(PageId::new(2)));
        let report = sim.into_report("t");
        assert_eq!(report.counts.migrations_to_nvm, 1);
        let pf = PAGE_FACTOR as f64;
        // Eq. 1 term 5: PageFactor * (TR_DRAM + TW_NVM) = 512 * 400.
        assert!((report.latency.migrations.value() - pf * 400.0).abs() < 1e-6);
        // Eq. 2 term 6: PageFactor * (PoR_DRAM + PoW_NVM) = 512 * 35.2.
        assert!((report.energy.migrations.value() - pf * 35.2).abs() < 1e-6);
        // The demotion wrote a page into NVM.
        assert_eq!(report.nvm_writes.migrations, PAGE_FACTOR);
        assert_eq!(report.wear.max_page_wear, PAGE_FACTOR);
    }

    #[test]
    fn nvm_demand_write_counts_one_physical_write() {
        let mut sim = two_lru(1, 4);
        sim.step(PageAccess::read(PageId::new(1)));
        sim.step(PageAccess::read(PageId::new(2))); // page 1 demoted to NVM
        sim.step(PageAccess::write(PageId::new(1))); // NVM write hit
        let report = sim.into_report("t");
        assert_eq!(report.counts.nvm_write_hits, 1);
        assert_eq!(report.nvm_writes.requests, 1);
        // NVM write latency charged on the request path.
        assert!((report.latency.requests.value() - 350.0).abs() < 1e-9);
    }

    #[test]
    fn clock_dwf_nvm_write_hit_migrates_not_serves() {
        let policy = ClockDwfPolicy::new(PageCount::new(1), PageCount::new(4)).unwrap();
        let mut sim = HybridSimulator::with_date2016_devices(Box::new(policy));
        sim.step(PageAccess::read(PageId::new(1))); // fills DRAM
        sim.step(PageAccess::read(PageId::new(2))); // fills NVM
        sim.step(PageAccess::write(PageId::new(2))); // write hit in NVM → swap
        let report = sim.into_report("t");
        assert_eq!(report.counts.migrations_to_dram, 1);
        assert_eq!(report.counts.migrations_to_nvm, 1);
        assert_eq!(
            report.counts.nvm_write_hits, 0,
            "served by DRAM after migration"
        );
        assert_eq!(report.nvm_writes.requests, 0);
        assert_eq!(report.nvm_writes.migrations, PAGE_FACTOR);
    }

    #[test]
    fn static_energy_scales_with_memory_size() {
        let small = {
            let mut sim = two_lru(1, 4);
            sim.step(PageAccess::read(PageId::new(1)));
            sim.into_report("t")
        };
        let large = {
            let mut sim = two_lru(10, 400);
            sim.step(PageAccess::read(PageId::new(1)));
            sim.into_report("t")
        };
        assert!(large.energy.static_energy > small.energy.static_energy);
    }

    #[test]
    fn dram_only_never_touches_nvm() {
        let policy = SingleTierPolicy::dram_only(PageCount::new(4)).unwrap();
        let mut sim = HybridSimulator::with_date2016_devices(Box::new(policy));
        for i in 0..20u64 {
            sim.step(PageAccess::write(PageId::new(i % 6)));
        }
        let report = sim.into_report("t");
        assert_eq!(report.nvm_writes.total(), 0);
        assert_eq!(report.nvm_stats.total_accesses(), 0);
        assert_eq!(report.counts.migrations(), 0);
        assert_eq!(report.nvm_pages, 0);
    }

    #[test]
    fn nvm_only_counts_demand_and_fill_writes() {
        let policy = SingleTierPolicy::nvm_only(PageCount::new(4)).unwrap();
        let mut sim = HybridSimulator::with_date2016_devices(Box::new(policy));
        sim.step(PageAccess::write(PageId::new(1))); // fault + fill
        sim.step(PageAccess::write(PageId::new(1))); // demand write
        let report = sim.into_report("t");
        assert_eq!(report.nvm_writes.page_faults, PAGE_FACTOR);
        assert_eq!(report.nvm_writes.requests, 1);
        assert_eq!(report.nvm_writes.total(), PAGE_FACTOR + 1);
    }

    #[test]
    fn run_consumes_an_iterator_and_counts_everything() {
        let mut sim = two_lru(2, 8);
        sim.run((0..50u64).map(|i| PageAccess::read(PageId::new(i % 12))));
        assert!(sim.latency_so_far().value() > 0.0);
        let report = sim.into_report("t");
        assert_eq!(report.counts.requests, 50);
        assert_eq!(report.counts.reads, 50);
        assert_eq!(report.footprint_pages, 12);
        assert_eq!(
            report.counts.hits() + report.counts.faults,
            report.counts.requests
        );
    }

    #[test]
    fn debug_format_is_informative() {
        let sim = two_lru(2, 8);
        let text = format!("{sim:?}");
        assert!(text.contains("two-lru") && text.contains("requests"));
    }

    /// A small mixed trace exercising hits in both tiers, faults,
    /// promotions, and demotions: pages cycle with reuse skew so the two-LRU
    /// counters fire.
    fn mixed_trace() -> Vec<PageAccess> {
        (0..4_000u64)
            .map(|i| {
                let page = PageId::new(match i % 7 {
                    0 | 1 => i % 3,          // hot pages, quickly DRAM-resident
                    2 | 3 | 4 => 10 + i % 9, // warm set straddling NVM
                    _ => 100 + i % 400,      // cold tail faulting from disk
                });
                if i % 5 == 0 {
                    PageAccess::write(page)
                } else {
                    PageAccess::read(page)
                }
            })
            .collect()
    }

    fn policies() -> Vec<Box<dyn HybridPolicy>> {
        vec![
            Box::new(TwoLruPolicy::new(
                TwoLruConfig::new(PageCount::new(4), PageCount::new(16)).unwrap(),
            )),
            Box::new(ClockDwfPolicy::new(PageCount::new(4), PageCount::new(16)).unwrap()),
            Box::new(SingleTierPolicy::dram_only(PageCount::new(12)).unwrap()),
            Box::new(SingleTierPolicy::nvm_only(PageCount::new(12)).unwrap()),
        ]
    }

    #[test]
    fn batched_replay_equals_serial_replay() {
        let trace = mixed_trace();
        for (serial_policy, batched_policy) in policies().into_iter().zip(policies()) {
            let name = serial_policy.name();
            let mut serial = HybridSimulator::with_date2016_devices(serial_policy);
            serial.run_slice(&trace);
            let mut batched = HybridSimulator::with_date2016_devices(batched_policy);
            batched.run_slice_batched(&trace);
            assert_eq!(
                serial.into_report("t"),
                batched.into_report("t"),
                "batched replay diverged from the serial oracle for {name}"
            );
        }
    }

    #[test]
    fn batched_replay_emits_identical_events() {
        use crate::RecordingSink;
        let trace = mixed_trace();
        let record = |batched: bool| {
            let config = TwoLruConfig::new(PageCount::new(4), PageCount::new(16)).unwrap();
            let mut sim =
                HybridSimulator::with_date2016_devices(Box::new(TwoLruPolicy::new(config)));
            sim.set_event_sink(Box::new(RecordingSink::new()));
            if batched {
                sim.run_slice_batched(&trace);
            } else {
                sim.run_slice(&trace);
            }
            let sink = sim.take_event_sink().unwrap();
            format!(
                "{:?}",
                sink.as_any()
                    .downcast_ref::<RecordingSink>()
                    .unwrap()
                    .events()
            )
        };
        assert_eq!(
            record(false),
            record(true),
            "event stream must be order-identical between drivers"
        );
    }
}
