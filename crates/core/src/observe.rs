//! Windowed observability: aggregates the simulator's event stream into
//! per-interval records and a [`MetricsRegistry`].
//!
//! The paper's claims are dynamic — hit ratio holds while migrations
//! trade AMAT (Eq. 1) against APPR (Eq. 2) — but a
//! [`SimulationReport`] only shows end-of-run aggregates. The
//! [`WindowedCollector`] is an [`EventSink`] that slices the run into
//! fixed windows of N demand accesses and emits one [`IntervalRecord`]
//! per window: per-tier hit counts, faults, migrations in both
//! directions, fills, evictions, DRAM/NVM occupancy, and the interval's
//! AMAT/APPR computed by feeding the interval's measured probabilities
//! through the analytical model ([`ModelParams`]).
//!
//! All interval boundaries are **access-index-based** (never wall-clock),
//! so the records — and their JSONL serialization via [`write_jsonl`] —
//! are byte-identical regardless of thread count or machine load.

use std::io::Write;

use hybridmem_metrics::{MetricsRegistry, MetricsSnapshot};
use hybridmem_policy::PolicyAction;
use hybridmem_types::{AccessKind, MemoryKind};
use serde::{Deserialize, Serialize};

use crate::{EventSink, ModelParams, Probabilities, SimEvent, SimulationReport};

/// Telemetry for one window of demand accesses.
///
/// `start_access`/`end_access` are 0-based indices into the *whole*
/// trace (warmup included), with `end_access` exclusive, so
/// consecutive records tile the steady-state portion of the run
/// exactly. `amat_ns` follows Eq. 1 and `appr_nj` Eq. 2 (dynamic
/// energy only — the Eq. 3 static share is a whole-run quantity),
/// both evaluated on this interval's measured probabilities with the
/// paper's Table IV / Table II device constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalRecord {
    /// Workload name the run was labeled with.
    pub workload: String,
    /// Policy name the run was labeled with.
    pub policy: String,
    /// 0-based ordinal of this window within the run.
    pub interval: u64,
    /// Trace index of the window's first demand access.
    pub start_access: u64,
    /// Trace index one past the window's last demand access.
    pub end_access: u64,
    /// Demand accesses in the window (`end_access - start_access`).
    pub accesses: u64,
    /// DRAM read hits.
    pub dram_read_hits: u64,
    /// DRAM write hits.
    pub dram_write_hits: u64,
    /// NVM read hits.
    pub nvm_read_hits: u64,
    /// NVM write hits.
    pub nvm_write_hits: u64,
    /// Page faults (main-memory misses).
    pub faults: u64,
    /// NVM→DRAM migrations.
    pub migrations_to_dram: u64,
    /// DRAM→NVM migrations.
    pub migrations_to_nvm: u64,
    /// Disk fills into DRAM.
    pub fills_to_dram: u64,
    /// Disk fills into NVM.
    pub fills_to_nvm: u64,
    /// Pages evicted to disk.
    pub evictions_to_disk: u64,
    /// Resident DRAM pages at the end of the window.
    pub dram_occupancy: u64,
    /// Resident NVM pages at the end of the window.
    pub nvm_occupancy: u64,
    /// Main-memory hit ratio of the window.
    pub hit_ratio: f64,
    /// Eq. 1 AMAT of the window, nanoseconds per request.
    pub amat_ns: f64,
    /// Eq. 2 dynamic APPR of the window, nanojoules per request.
    pub appr_nj: f64,
}

/// Running tallies for the window being filled.
#[derive(Debug, Clone, Copy, Default)]
struct WindowCounters {
    dram_read_hits: u64,
    dram_write_hits: u64,
    nvm_read_hits: u64,
    nvm_write_hits: u64,
    faults: u64,
    migrations_to_dram: u64,
    migrations_to_nvm: u64,
    fills_to_dram: u64,
    fills_to_nvm: u64,
    evictions_to_disk: u64,
}

impl WindowCounters {
    fn hits(&self) -> u64 {
        self.dram_read_hits + self.dram_write_hits + self.nvm_read_hits + self.nvm_write_hits
    }
}

/// An [`EventSink`] that aggregates events into per-window
/// [`IntervalRecord`]s plus a cumulative [`MetricsRegistry`].
///
/// Windows count **demand accesses** (`Served` + `Fault` events); the
/// policy actions a fault triggers are attributed to the window of the
/// faulting access even though they arrive as later events, so a
/// window's `fills` always balance its `faults`. Accesses during the
/// declared warmup prefix update occupancy but produce no records —
/// interval 0 starts at the first steady-state access. A `window` of 0
/// disables slicing: the whole steady state becomes one record at
/// [`WindowedCollector::finish`].
///
/// # Examples
///
/// ```
/// use hybridmem_core::{EventSink, HybridSimulator, WindowedCollector};
/// use hybridmem_policy::{TwoLruConfig, TwoLruPolicy};
/// use hybridmem_types::{PageAccess, PageCount, PageId};
///
/// let config = TwoLruConfig::new(PageCount::new(8), PageCount::new(32))?;
/// let mut sim = HybridSimulator::with_date2016_devices(Box::new(TwoLruPolicy::new(config)));
/// sim.set_event_sink(Box::new(WindowedCollector::new("demo", "two-lru", 16, 0)));
/// for i in 0..64u64 {
///     sim.step(PageAccess::read(PageId::new(i % 24)));
/// }
/// let mut sink = sim.take_event_sink().expect("sink was installed");
/// let collector = sink
///     .as_any_mut()
///     .downcast_mut::<WindowedCollector>()
///     .expect("the installed sink is a WindowedCollector");
/// collector.finish();
/// let records = collector.drain();
/// assert_eq!(records.len(), 4);
/// assert_eq!(records[0].accesses, 16);
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
#[derive(Debug)]
pub struct WindowedCollector {
    workload: String,
    policy: String,
    window: u64,
    warmup: u64,
    /// Demand accesses seen so far (warmup included).
    access_index: u64,
    /// Demand accesses in the window currently being filled.
    in_window: u64,
    /// Trace index of the current window's first access.
    window_start: u64,
    interval: u64,
    dram_occupancy: u64,
    nvm_occupancy: u64,
    current: WindowCounters,
    registry: MetricsRegistry,
    completed: Vec<IntervalRecord>,
}

impl WindowedCollector {
    /// Creates a collector slicing the run into `window`-access
    /// intervals after skipping `warmup` accesses (0 = no warmup). A
    /// `window` of 0 yields a single whole-run interval.
    #[must_use]
    pub fn new(
        workload: impl Into<String>,
        policy: impl Into<String>,
        window: u64,
        warmup: u64,
    ) -> Self {
        Self {
            workload: workload.into(),
            policy: policy.into(),
            window,
            warmup,
            access_index: 0,
            in_window: 0,
            window_start: 0,
            interval: 0,
            dram_occupancy: 0,
            nvm_occupancy: 0,
            current: WindowCounters::default(),
            registry: MetricsRegistry::new(),
            completed: Vec::new(),
        }
    }

    /// True once the warmup prefix has fully passed (actions trail
    /// their demand access, so the comparison is strict).
    fn in_steady_state(&self) -> bool {
        self.access_index > self.warmup
    }

    /// Closes the current window and pushes its record.
    fn flush(&mut self) {
        debug_assert!(self.in_window > 0);
        let c = self.current;
        let accesses = self.in_window;
        #[allow(clippy::cast_precision_loss)]
        let n = accesses as f64;
        #[allow(clippy::cast_precision_loss)]
        let ratio = |count: u64| count as f64 / n;
        let dram_hits = c.dram_read_hits + c.dram_write_hits;
        let nvm_hits = c.nvm_read_hits + c.nvm_write_hits;
        #[allow(clippy::cast_precision_loss)]
        let conditional = |part: u64, whole: u64| {
            if whole == 0 {
                0.0
            } else {
                part as f64 / whole as f64
            }
        };
        let model = ModelParams::date2016(Probabilities {
            hit_dram: ratio(dram_hits),
            hit_nvm: ratio(nvm_hits),
            miss: ratio(c.faults),
            read_given_dram: conditional(c.dram_read_hits, dram_hits),
            read_given_nvm: conditional(c.nvm_read_hits, nvm_hits),
            migrate_to_dram: ratio(c.migrations_to_dram),
            migrate_to_nvm: ratio(c.migrations_to_nvm),
            disk_to_dram: conditional(c.fills_to_dram, c.faults),
            disk_to_nvm: conditional(c.fills_to_nvm, c.faults),
        });

        self.completed.push(IntervalRecord {
            workload: self.workload.clone(),
            policy: self.policy.clone(),
            interval: self.interval,
            start_access: self.window_start,
            end_access: self.window_start + accesses,
            accesses,
            dram_read_hits: c.dram_read_hits,
            dram_write_hits: c.dram_write_hits,
            nvm_read_hits: c.nvm_read_hits,
            nvm_write_hits: c.nvm_write_hits,
            faults: c.faults,
            migrations_to_dram: c.migrations_to_dram,
            migrations_to_nvm: c.migrations_to_nvm,
            fills_to_dram: c.fills_to_dram,
            fills_to_nvm: c.fills_to_nvm,
            evictions_to_disk: c.evictions_to_disk,
            dram_occupancy: self.dram_occupancy,
            nvm_occupancy: self.nvm_occupancy,
            hit_ratio: ratio(c.hits()),
            amat_ns: model.amat().value(),
            appr_nj: model.appr().value(),
        });

        self.registry.inc("sim.intervals");
        self.registry.add("sim.accesses", accesses);
        self.registry.add("sim.dram_read_hits", c.dram_read_hits);
        self.registry.add("sim.dram_write_hits", c.dram_write_hits);
        self.registry.add("sim.nvm_read_hits", c.nvm_read_hits);
        self.registry.add("sim.nvm_write_hits", c.nvm_write_hits);
        self.registry.add("sim.faults", c.faults);
        self.registry
            .add("sim.migrations_to_dram", c.migrations_to_dram);
        self.registry
            .add("sim.migrations_to_nvm", c.migrations_to_nvm);
        self.registry.add("sim.fills_to_dram", c.fills_to_dram);
        self.registry.add("sim.fills_to_nvm", c.fills_to_nvm);
        self.registry
            .add("sim.evictions_to_disk", c.evictions_to_disk);
        #[allow(clippy::cast_precision_loss)]
        {
            self.registry
                .set_gauge("sim.dram_occupancy", self.dram_occupancy as f64);
            self.registry
                .set_gauge("sim.nvm_occupancy", self.nvm_occupancy as f64);
        }
        self.registry.observe("sim.window.faults", c.faults);
        self.registry.observe(
            "sim.window.migrations",
            c.migrations_to_dram + c.migrations_to_nvm,
        );

        self.interval += 1;
        self.in_window = 0;
        self.current = WindowCounters::default();
    }

    /// Closes the partially filled final window, if any. Call exactly
    /// once after the run (idempotent when nothing new arrived).
    pub fn finish(&mut self) {
        if self.in_window > 0 {
            self.flush();
        }
    }

    /// Completed interval records so far, oldest first.
    #[must_use]
    pub fn records(&self) -> &[IntervalRecord] {
        &self.completed
    }

    /// Takes the completed records, leaving the collector running —
    /// the streaming path (`hybridmem observe`) drains between steps.
    pub fn drain(&mut self) -> Vec<IntervalRecord> {
        std::mem::take(&mut self.completed)
    }

    /// The cumulative metrics registry (updated at each window close).
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Mutable registry access, so callers can fold in metrics from
    /// adjacent subsystems (e.g. the policy's window statistics) before
    /// taking the final snapshot.
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Snapshot of the cumulative metrics.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    fn on_action(&mut self, action: PolicyAction) {
        // Occupancy moves during warmup too — the steady-state windows
        // must start from the true resident-set level.
        match action {
            PolicyAction::FillFromDisk { into, .. } => match into {
                MemoryKind::Dram => self.dram_occupancy += 1,
                MemoryKind::Nvm => self.nvm_occupancy += 1,
            },
            PolicyAction::Migrate { from, to, .. } => {
                match from {
                    MemoryKind::Dram => self.dram_occupancy = self.dram_occupancy.saturating_sub(1),
                    MemoryKind::Nvm => self.nvm_occupancy = self.nvm_occupancy.saturating_sub(1),
                }
                match to {
                    MemoryKind::Dram => self.dram_occupancy += 1,
                    MemoryKind::Nvm => self.nvm_occupancy += 1,
                }
            }
            PolicyAction::EvictToDisk { from, .. } => match from {
                MemoryKind::Dram => self.dram_occupancy = self.dram_occupancy.saturating_sub(1),
                MemoryKind::Nvm => self.nvm_occupancy = self.nvm_occupancy.saturating_sub(1),
            },
        }
        if !self.in_steady_state() {
            return;
        }
        match action {
            PolicyAction::FillFromDisk { into, .. } => match into {
                MemoryKind::Dram => self.current.fills_to_dram += 1,
                MemoryKind::Nvm => self.current.fills_to_nvm += 1,
            },
            PolicyAction::Migrate { to, .. } => match to {
                MemoryKind::Dram => self.current.migrations_to_dram += 1,
                MemoryKind::Nvm => self.current.migrations_to_nvm += 1,
            },
            PolicyAction::EvictToDisk { .. } => self.current.evictions_to_disk += 1,
        }
    }

    /// Handles one demand access (`Served` or `Fault`).
    fn on_demand(&mut self, count: impl FnOnce(&mut WindowCounters)) {
        // Deferred flush: close the previous window only when the next
        // demand access arrives, so a window-closing fault's fill and
        // eviction actions still land in *its* window.
        if self.window > 0 && self.in_window == self.window {
            self.flush();
        }
        let index = self.access_index;
        self.access_index += 1;
        if index < self.warmup {
            return;
        }
        if self.in_window == 0 {
            self.window_start = index;
        }
        self.in_window += 1;
        count(&mut self.current);
    }
}

impl EventSink for WindowedCollector {
    fn record(&mut self, event: SimEvent) {
        match event {
            SimEvent::Served { access, from } => {
                self.on_demand(|c| match (from, access.kind) {
                    (MemoryKind::Dram, AccessKind::Read) => c.dram_read_hits += 1,
                    (MemoryKind::Dram, AccessKind::Write) => c.dram_write_hits += 1,
                    (MemoryKind::Nvm, AccessKind::Read) => c.nvm_read_hits += 1,
                    (MemoryKind::Nvm, AccessKind::Write) => c.nvm_write_hits += 1,
                });
            }
            SimEvent::Fault { .. } => self.on_demand(|c| c.faults += 1),
            SimEvent::Action { action } => self.on_action(action),
            // Provenance probes are the page ledger's concern; interval
            // aggregates already count the hit via its Served event.
            SimEvent::CounterProbe { .. } => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Serializes records as JSON Lines: one [`IntervalRecord`] per line,
/// in slice order. Field order is the struct's declaration order, so
/// identical records always produce identical bytes.
///
/// # Errors
///
/// Returns any I/O error from the writer, and wraps (unreachable for
/// this type) serialization failures as [`std::io::ErrorKind::Other`].
pub fn write_jsonl<W: Write>(writer: &mut W, records: &[IntervalRecord]) -> std::io::Result<()> {
    for record in records {
        let line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::Other, e))?;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// A simulation run plus its windowed telemetry — what the observed
/// experiment runners
/// ([`run_observed`](crate::ExperimentConfig::run_observed),
/// [`compare_policies_observed`](crate::compare_policies_observed))
/// return per cell.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// The end-of-run aggregate report, identical to an unobserved run.
    pub report: SimulationReport,
    /// Per-window interval records, oldest first.
    pub records: Vec<IntervalRecord>,
    /// Cumulative metrics from the run's [`WindowedCollector`].
    pub metrics: MetricsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem_types::{PageAccess, PageId};

    fn served(page: u64, kind: MemoryKind) -> SimEvent {
        SimEvent::Served {
            access: PageAccess::read(PageId::new(page)),
            from: kind,
        }
    }

    fn fault_with_fill(page: u64, into: MemoryKind) -> [SimEvent; 2] {
        [
            SimEvent::Fault {
                access: PageAccess::read(PageId::new(page)),
            },
            SimEvent::Action {
                action: PolicyAction::FillFromDisk {
                    page: PageId::new(page),
                    into,
                },
            },
        ]
    }

    #[test]
    fn windows_tile_the_run_and_attribute_fills_to_the_faulting_window() {
        let mut collector = WindowedCollector::new("w", "p", 2, 0);
        // Access 0: fault (fills into DRAM), access 1: hit — window 0
        // closes exactly at the boundary with the fill inside it.
        for event in fault_with_fill(1, MemoryKind::Dram) {
            collector.record(event);
        }
        collector.record(served(1, MemoryKind::Dram));
        // Access 2: another fault. Its fill must land in window 1 even
        // though window 0 was already full when the fault arrived.
        for event in fault_with_fill(2, MemoryKind::Nvm) {
            collector.record(event);
        }
        collector.finish();

        let records = collector.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].accesses, 2);
        assert_eq!(records[0].faults, 1);
        assert_eq!(records[0].fills_to_dram, 1);
        assert_eq!((records[0].start_access, records[0].end_access), (0, 2));
        assert_eq!(records[1].accesses, 1, "partial trailing window");
        assert_eq!(records[1].fills_to_nvm, 1);
        assert_eq!((records[1].start_access, records[1].end_access), (2, 3));
    }

    #[test]
    fn warmup_accesses_produce_no_records_but_move_occupancy() {
        let mut collector = WindowedCollector::new("w", "p", 10, 2);
        for event in fault_with_fill(1, MemoryKind::Dram) {
            collector.record(event);
        }
        for event in fault_with_fill(2, MemoryKind::Nvm) {
            collector.record(event);
        }
        collector.record(served(1, MemoryKind::Dram));
        collector.finish();

        let records = collector.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].start_access, 2, "interval 0 starts after warmup");
        assert_eq!(records[0].accesses, 1);
        assert_eq!(records[0].faults, 0, "warmup faults are not counted");
        assert_eq!(records[0].dram_occupancy, 1, "warmup fills still resident");
        assert_eq!(records[0].nvm_occupancy, 1);
    }

    #[test]
    fn window_zero_yields_one_whole_run_record() {
        let mut collector = WindowedCollector::new("w", "p", 0, 0);
        for page in 0..5 {
            collector.record(served(page, MemoryKind::Dram));
        }
        collector.finish();
        assert_eq!(collector.records().len(), 1);
        assert_eq!(collector.records()[0].accesses, 5);
        assert!((collector.records()[0].hit_ratio - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn interval_amat_matches_the_closed_form() {
        let mut collector = WindowedCollector::new("w", "p", 4, 0);
        collector.record(served(1, MemoryKind::Dram));
        collector.record(served(2, MemoryKind::Nvm));
        for event in fault_with_fill(3, MemoryKind::Dram) {
            collector.record(event);
        }
        collector.record(served(1, MemoryKind::Dram));
        collector.finish();

        let record = &collector.records()[0];
        let model = ModelParams::date2016(Probabilities {
            hit_dram: 0.5,
            hit_nvm: 0.25,
            miss: 0.25,
            read_given_dram: 1.0,
            read_given_nvm: 1.0,
            migrate_to_dram: 0.0,
            migrate_to_nvm: 0.0,
            disk_to_dram: 1.0,
            disk_to_nvm: 0.0,
        });
        assert!((record.amat_ns - model.amat().value()).abs() < 1e-9);
        assert!((record.appr_nj - model.appr().value()).abs() < 1e-9);
        assert!((record.hit_ratio - 0.75).abs() < 1e-12);
    }

    #[test]
    fn registry_accumulates_across_windows() {
        let mut collector = WindowedCollector::new("w", "p", 2, 0);
        for page in 0..6 {
            collector.record(served(page, MemoryKind::Dram));
        }
        collector.finish();
        let registry = collector.registry();
        assert_eq!(registry.counter("sim.intervals"), 3);
        assert_eq!(registry.counter("sim.accesses"), 6);
        assert_eq!(registry.counter("sim.dram_read_hits"), 6);
        let windows = registry.histogram("sim.window.faults").unwrap();
        assert_eq!(windows.count(), 3);
    }

    #[test]
    fn drain_takes_records_and_keeps_collecting() {
        let mut collector = WindowedCollector::new("w", "p", 1, 0);
        collector.record(served(1, MemoryKind::Dram));
        collector.record(served(2, MemoryKind::Dram));
        let first = collector.drain();
        assert_eq!(first.len(), 1, "only the closed window is drained");
        collector.record(served(3, MemoryKind::Dram));
        collector.finish();
        let rest = collector.drain();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].interval, 1);
        assert_eq!(rest[1].interval, 2);
        assert!(collector.records().is_empty());
    }

    #[test]
    fn jsonl_is_one_line_per_record_and_roundtrips() {
        let mut collector = WindowedCollector::new("w", "p", 2, 0);
        for page in 0..4 {
            collector.record(served(page, MemoryKind::Dram));
        }
        collector.finish();
        let mut bytes = Vec::new();
        write_jsonl(&mut bytes, collector.records()).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let parsed: IntervalRecord = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(&parsed, &collector.records()[0]);
        assert!(lines[0].starts_with("{\"workload\":\"w\""));
    }

    #[test]
    fn finish_is_idempotent() {
        let mut collector = WindowedCollector::new("w", "p", 4, 0);
        collector.record(served(1, MemoryKind::Dram));
        collector.finish();
        collector.finish();
        assert_eq!(collector.records().len(), 1);
    }

    #[test]
    fn final_partial_window_flushes_when_run_length_is_not_a_multiple() {
        // 10 accesses through a window of 4: two full windows plus a
        // 2-access remainder that only `finish` can close.
        let mut collector = WindowedCollector::new("w", "p", 4, 0);
        for page in 0..10 {
            collector.record(served(page, MemoryKind::Dram));
        }
        assert_eq!(
            collector.records().len(),
            2,
            "the remainder stays open until finish"
        );
        collector.finish();
        let records = collector.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].accesses, 2);
        assert_eq!((records[2].start_access, records[2].end_access), (8, 10));
        // The windows tile the run exactly: no access lost or duplicated.
        assert_eq!(records.iter().map(|r| r.accesses).sum::<u64>(), 10);
        for pair in records.windows(2) {
            assert_eq!(pair[0].end_access, pair[1].start_access);
        }
        assert_eq!(collector.registry().counter("sim.accesses"), 10);
    }

    #[test]
    fn zero_demand_run_emits_no_empty_records() {
        let mut collector = WindowedCollector::new("w", "p", 4, 0);
        collector.finish();
        assert!(collector.records().is_empty());
        assert_eq!(collector.registry().counter("sim.intervals"), 0);

        // Even action-only streams (no demand access ever served) must
        // not fabricate an interval.
        let mut action_only = WindowedCollector::new("w", "p", 4, 0);
        action_only.record(SimEvent::Action {
            action: PolicyAction::FillFromDisk {
                page: PageId::new(1),
                into: MemoryKind::Dram,
            },
        });
        action_only.finish();
        assert!(action_only.records().is_empty());
        let mut bytes = Vec::new();
        write_jsonl(&mut bytes, action_only.records()).unwrap();
        assert!(bytes.is_empty(), "no records means no JSONL lines");
    }
}
