//! Crash-safe resume journal for long experiment campaigns.
//!
//! A matrix run that dies at cell 40 of 48 — a crash, a kill, an
//! exhausted fault-retry budget under `--strict` — should not cost the
//! 39 completed cells. [`RunJournal`] is an append-only per-cell
//! completion log in the `binfmt` spirit: fixed magic, a fingerprint
//! binding the journal to one exact matrix, and length-prefixed,
//! FNV-1a-checksummed records that are `fsync`ed as they land. A rerun
//! with `--resume <journal>` replays completed cells straight out of
//! the journal (their serialized reports round-trip exactly — serde's
//! float formatting is shortest-exact, so a resumed run's output is
//! byte-identical to an uninterrupted one) and computes only the cells
//! that are missing.
//!
//! # On-disk format
//!
//! ```text
//! offset 0   8 bytes  magic "HMJRNL1\0"
//! offset 8   4 bytes  format version (LE u32, currently 1)
//! offset 12  8 bytes  matrix fingerprint (LE u64)
//! offset 20  records  [len: LE u32][fnv1a64(payload): LE u64][payload]
//! ```
//!
//! The payload is the JSON of one [`JournalEntry`]. A torn final
//! record — the crash happened mid-append — fails its length or
//! checksum check and is truncated away on open; every record before
//! it survives. A journal whose fingerprint does not match the matrix
//! being run is a typed error, never silently reused: resuming cell
//! reports into a *different* matrix would corrupt results.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hybridmem_trace::binfmt::{fnv1a64_update, FNV1A64_SEED};
use hybridmem_types::{Error, FxHashMap};
use serde::{Deserialize, Serialize};

/// Journal file magic, 8 bytes at offset 0.
pub const JOURNAL_MAGIC: [u8; 8] = *b"HMJRNL1\0";

/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;

/// Header length: magic + version + fingerprint.
const HEADER_BYTES: usize = 20;

/// Per-record framing ahead of the payload: length + checksum.
const FRAME_BYTES: usize = 12;

/// One completed cell as journaled: its coordinates plus the full
/// serialized report, kept as raw JSON so the journal layer never
/// needs to know the report type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Workload name of the completed cell.
    pub workload: String,
    /// Policy name of the completed cell.
    pub policy: String,
    /// The cell's report, verbatim.
    pub report: serde_json::Value,
}

struct Inner {
    file: File,
    completed: FxHashMap<(String, String), serde_json::Value>,
}

/// An append-only, fsynced, checksummed per-cell completion log. See
/// the module docs for the format and crash-safety rules.
pub struct RunJournal {
    path: PathBuf,
    fingerprint: u64,
    // xtask:allow(hot-path-lock, why=one acquisition per completed matrix cell, not per simulated access)
    inner: Mutex<Inner>,
    /// Appends that failed (serialization or I/O). The journal is an
    /// availability feature, so append failures degrade the resume —
    /// they never abort the run — but they must not be invisible.
    append_errors: AtomicU64,
    /// Bytes of torn or corrupt tail truncated away on open. The loss
    /// is recoverable (the interrupted cell just reruns), but callers
    /// surface it so a crash that tore a record is never silent.
    torn_tail_bytes: u64,
}

impl RunJournal {
    /// Opens (or creates) the journal at `path` for a matrix with the
    /// given `fingerprint`. An existing journal is scanned record by
    /// record: a torn or corrupt tail is truncated away, and every
    /// intact record becomes a completed cell visible through
    /// [`Self::completed_report`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when the file exists but is not
    /// a journal, has an unsupported version, or — the important case —
    /// was written for a *different* matrix fingerprint.
    pub fn open(path: impl Into<PathBuf>, fingerprint: u64) -> Result<Self, Error> {
        let path = path.into();
        let io_err =
            |e: std::io::Error| Error::invalid_input(format!("journal {}: {e}", path.display()));
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(io_err)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io_err)?;

        let mut completed = FxHashMap::default();
        let valid_end = if bytes.is_empty() {
            let mut header = Vec::with_capacity(HEADER_BYTES);
            header.extend_from_slice(&JOURNAL_MAGIC);
            header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
            header.extend_from_slice(&fingerprint.to_le_bytes());
            file.write_all(&header).map_err(io_err)?;
            file.sync_data().map_err(io_err)?;
            HEADER_BYTES as u64
        } else {
            Self::scan(&path, &bytes, fingerprint, &mut completed)?
        };
        let torn_tail_bytes = (bytes.len() as u64).saturating_sub(valid_end);
        // Drop any torn tail so appends extend the valid prefix.
        file.set_len(valid_end).map_err(io_err)?;
        file.seek(SeekFrom::End(0)).map_err(io_err)?;
        Ok(Self {
            path,
            fingerprint,
            inner: Mutex::new(Inner { file, completed }),
            append_errors: AtomicU64::new(0),
            torn_tail_bytes,
        })
    }

    /// Validates the header and scans the record sequence, filling
    /// `completed` and returning the byte offset of the valid prefix's
    /// end. Corruption *after* a valid header is tolerated (that is
    /// the crash being recovered from); a bad header or foreign
    /// fingerprint is an error.
    fn scan(
        path: &Path,
        bytes: &[u8],
        fingerprint: u64,
        completed: &mut FxHashMap<(String, String), serde_json::Value>,
    ) -> Result<u64, Error> {
        let bad =
            |reason: String| Error::invalid_input(format!("journal {}: {reason}", path.display()));
        if bytes.len() < HEADER_BYTES || bytes[..8] != JOURNAL_MAGIC {
            return Err(bad("not a run journal (bad magic)".to_owned()));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap_or_default());
        if version != JOURNAL_VERSION {
            return Err(bad(format!(
                "unsupported journal version {version} (expected {JOURNAL_VERSION})"
            )));
        }
        let stored = u64::from_le_bytes(bytes[12..20].try_into().unwrap_or_default());
        if stored != fingerprint {
            return Err(bad(format!(
                "matrix fingerprint mismatch: journal has {stored:#018x}, this run is {fingerprint:#018x} \
                 (resuming into a different matrix would corrupt results)"
            )));
        }
        let mut offset = HEADER_BYTES;
        while bytes.len() - offset >= FRAME_BYTES {
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap_or_default())
                as usize;
            let crc = u64::from_le_bytes(
                bytes[offset + 4..offset + 12]
                    .try_into()
                    .unwrap_or_default(),
            );
            let Some(end) = offset.checked_add(FRAME_BYTES + len) else {
                break;
            };
            if end > bytes.len() {
                break; // torn final record
            }
            let payload = &bytes[offset + FRAME_BYTES..end];
            if fnv1a64_update(FNV1A64_SEED, payload) != crc {
                break; // corrupt record: keep the prefix, drop the rest
            }
            let Ok(entry) = serde_json::from_slice::<JournalEntry>(payload) else {
                break;
            };
            completed.insert((entry.workload, entry.policy), entry.report);
            offset = end;
        }
        Ok(offset as u64)
    }

    /// The matrix fingerprint this journal is bound to.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Completed cells currently in the journal.
    ///
    /// # Panics
    ///
    /// Panics if the journal mutex was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        // xtask:allow(hot-path-lock, why=diagnostics accessor, called off the hot path)
        self.inner.lock().expect("journal poisoned").completed.len()
    }

    /// True when no cells have completed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The journaled report of `(workload, policy)`, if that cell
    /// already completed in a previous (or this) run.
    ///
    /// # Panics
    ///
    /// Panics if the journal mutex was poisoned.
    #[must_use]
    pub fn completed_report(&self, workload: &str, policy: &str) -> Option<serde_json::Value> {
        // xtask:allow(hot-path-lock, why=one acquisition per matrix cell, not per simulated access)
        self.inner
            .lock()
            .expect("journal poisoned")
            .completed
            .get(&(workload.to_owned(), policy.to_owned()))
            .cloned()
    }

    /// Appends one completed cell, checksummed and fsynced, and makes
    /// it visible to [`Self::completed_report`]. Best-effort: an
    /// append that cannot be serialized or written is counted in
    /// [`Self::append_errors`] and the run continues (the journal is
    /// an availability feature, not a correctness dependency).
    ///
    /// # Panics
    ///
    /// Panics if the journal mutex was poisoned.
    pub fn record<T: Serialize>(&self, workload: &str, policy: &str, report: &T) {
        let Ok(report) = serde_json::to_value(report) else {
            // xtask:allow(atomic-ordering, why=monotonic error counter; readers tolerate any interleaving)
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let entry = JournalEntry {
            workload: workload.to_owned(),
            policy: policy.to_owned(),
            report,
        };
        let Ok(payload) = serde_json::to_vec(&entry) else {
            // xtask:allow(atomic-ordering, why=monotonic error counter; readers tolerate any interleaving)
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let mut frame = Vec::with_capacity(FRAME_BYTES + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64_update(FNV1A64_SEED, &payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        // xtask:allow(hot-path-lock, why=one acquisition per completed matrix cell, not per simulated access)
        let mut inner = self.inner.lock().expect("journal poisoned");
        let written = inner
            .file
            .write_all(&frame)
            .and_then(|()| inner.file.sync_data());
        if written.is_err() {
            // xtask:allow(atomic-ordering, why=monotonic error counter; readers tolerate any interleaving)
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        inner
            .completed
            .insert((entry.workload, entry.policy), entry.report);
    }

    /// Appends that failed and were dropped (never fatal, never
    /// silent).
    #[must_use]
    pub fn append_errors(&self) -> u64 {
        // xtask:allow(atomic-ordering, why=relaxed stats snapshot; exactness not required)
        self.append_errors.load(Ordering::Relaxed)
    }

    /// Bytes of torn or corrupt tail that [`Self::open`] truncated away
    /// — a record was mid-append when the previous run died. Every
    /// complete record before the tear was replayed; callers should
    /// surface the count as a warning so the data loss is visible.
    #[must_use]
    pub fn torn_tail_bytes(&self) -> u64 {
        self.torn_tail_bytes
    }
}

impl std::fmt::Debug for RunJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunJournal")
            .field("path", &self.path)
            .field("fingerprint", &self.fingerprint)
            .field("completed", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique journal path per test, removed on drop.
    struct TmpJournal(PathBuf);

    impl TmpJournal {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "hybridmem-journal-test-{}-{tag}.hmjournal",
                std::process::id()
            ));
            let _ = std::fs::remove_file(&path);
            Self(path)
        }
    }

    impl Drop for TmpJournal {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct FakeReport {
        hits: u64,
        amat: f64,
    }

    #[test]
    fn records_round_trip_across_reopen() {
        let tmp = TmpJournal::new("roundtrip");
        let journal = RunJournal::open(&tmp.0, 0xABCD).unwrap();
        assert!(journal.is_empty());
        journal.record(
            "bodytrack",
            "two-lru",
            &FakeReport {
                hits: 9,
                amat: 0.1 + 0.2,
            },
        );
        journal.record("canneal", "nvm-only", &FakeReport { hits: 3, amat: 7.5 });
        assert_eq!(journal.len(), 2);
        assert_eq!(journal.append_errors(), 0);
        drop(journal);

        let reopened = RunJournal::open(&tmp.0, 0xABCD).unwrap();
        assert_eq!(reopened.len(), 2);
        let report: FakeReport =
            serde_json::from_value(reopened.completed_report("bodytrack", "two-lru").unwrap())
                .unwrap();
        assert_eq!(
            report,
            FakeReport {
                hits: 9,
                amat: 0.1 + 0.2
            },
            "floats exact"
        );
        assert!(reopened
            .completed_report("bodytrack", "dram-only")
            .is_none());
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_records_survive() {
        let tmp = TmpJournal::new("torn");
        let journal = RunJournal::open(&tmp.0, 7).unwrap();
        journal.record("w1", "p", &FakeReport { hits: 1, amat: 1.0 });
        journal.record("w2", "p", &FakeReport { hits: 2, amat: 2.0 });
        drop(journal);

        // Tear the final record mid-payload, as a crash would.
        let bytes = std::fs::read(&tmp.0).unwrap();
        std::fs::write(&tmp.0, &bytes[..bytes.len() - 5]).unwrap();

        let recovered = RunJournal::open(&tmp.0, 7).unwrap();
        assert_eq!(recovered.len(), 1, "torn record dropped, first kept");
        assert!(recovered.completed_report("w1", "p").is_some());
        assert!(recovered.completed_report("w2", "p").is_none());
        assert!(
            recovered.torn_tail_bytes() > 0,
            "the dropped tail is reported, not silent"
        );

        // The truncation happened on disk: appends extend a valid log.
        recovered.record("w3", "p", &FakeReport { hits: 3, amat: 3.0 });
        drop(recovered);
        let reopened = RunJournal::open(&tmp.0, 7).unwrap();
        assert_eq!(reopened.len(), 2);
        assert!(reopened.completed_report("w3", "p").is_some());
    }

    #[test]
    fn a_partial_frame_tail_replays_complete_records_and_reports_the_loss() {
        let tmp = TmpJournal::new("partialframe");
        let journal = RunJournal::open(&tmp.0, 7).unwrap();
        journal.record("w1", "p", &FakeReport { hits: 1, amat: 1.0 });
        journal.record("w2", "p", &FakeReport { hits: 2, amat: 2.0 });
        assert_eq!(journal.torn_tail_bytes(), 0, "clean open reports zero");
        drop(journal);

        // A crash mid-append can leave a complete 12-byte frame header
        // plus the first few payload bytes: the frame claims a payload
        // that is not there. All 16 bytes must be dropped — and every
        // complete record before them replayed — without failing.
        let mut bytes = std::fs::read(&tmp.0).unwrap();
        let mut tail = Vec::new();
        tail.extend_from_slice(&64u32.to_le_bytes()); // claims 64 payload bytes
        tail.extend_from_slice(&0u64.to_le_bytes()); // checksum of the lost payload
        tail.extend_from_slice(b"{\"wo"); // 4 bytes of payload made it to disk
        assert_eq!(tail.len(), 16);
        bytes.extend_from_slice(&tail);
        std::fs::write(&tmp.0, &bytes).unwrap();

        let recovered = RunJournal::open(&tmp.0, 7).unwrap();
        assert_eq!(recovered.len(), 2, "every complete record replays");
        assert!(recovered.completed_report("w1", "p").is_some());
        assert!(recovered.completed_report("w2", "p").is_some());
        assert_eq!(recovered.torn_tail_bytes(), 16);

        // The truncation happened on disk: a clean reopen sees no tear.
        drop(recovered);
        let reopened = RunJournal::open(&tmp.0, 7).unwrap();
        assert_eq!(reopened.torn_tail_bytes(), 0);
        assert_eq!(reopened.len(), 2);
    }

    #[test]
    fn corrupt_record_checksum_drops_the_suffix() {
        let tmp = TmpJournal::new("corrupt");
        let journal = RunJournal::open(&tmp.0, 7).unwrap();
        journal.record("w1", "p", &FakeReport { hits: 1, amat: 1.0 });
        journal.record("w2", "p", &FakeReport { hits: 2, amat: 2.0 });
        drop(journal);

        // Flip a byte inside the *first* record's payload: both records
        // sit after it, and the scan keeps only the prefix before the
        // corruption.
        let mut bytes = std::fs::read(&tmp.0).unwrap();
        bytes[HEADER_BYTES + FRAME_BYTES + 4] ^= 0x01;
        std::fs::write(&tmp.0, &bytes).unwrap();

        let recovered = RunJournal::open(&tmp.0, 7).unwrap();
        assert_eq!(recovered.len(), 0, "corruption invalidates the suffix");
    }

    #[test]
    fn foreign_fingerprint_is_rejected() {
        let tmp = TmpJournal::new("fingerprint");
        RunJournal::open(&tmp.0, 1).unwrap();
        let err = RunJournal::open(&tmp.0, 2).unwrap_err();
        assert!(err.to_string().contains("fingerprint mismatch"), "{err}");
    }

    #[test]
    fn non_journal_files_are_rejected() {
        let tmp = TmpJournal::new("notajournal");
        std::fs::write(&tmp.0, b"definitely not a journal").unwrap();
        let err = RunJournal::open(&tmp.0, 1).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn rerecording_a_cell_overwrites_its_visible_report() {
        let tmp = TmpJournal::new("rerecord");
        let journal = RunJournal::open(&tmp.0, 7).unwrap();
        journal.record("w", "p", &FakeReport { hits: 1, amat: 1.0 });
        journal.record("w", "p", &FakeReport { hits: 2, amat: 2.0 });
        assert_eq!(journal.len(), 1);
        drop(journal);
        let reopened = RunJournal::open(&tmp.0, 7).unwrap();
        let report: FakeReport =
            serde_json::from_value(reopened.completed_report("w", "p").unwrap()).unwrap();
        assert_eq!(report.hits, 2, "last append wins on replay too");
    }
}
