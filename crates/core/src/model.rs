//! The paper's analytical performance and power models (Section II).
//!
//! [`ModelParams`] mirrors Table I: per-technology latencies and energies,
//! hit/miss/migration probabilities, and `PageFactor`. [`ModelParams::amat`]
//! implements Eq. 1 and [`ModelParams::appr`] implements Eq. 2 verbatim;
//! [`TimeModel`] supplies the workload duration that Eq. 3's prorated
//! static power needs.
//!
//! The simulator (`crate::HybridSimulator`) measures the same quantities by
//! direct accounting; these closed forms exist to (a) document the model,
//! (b) unit-test the algebra on hand-computed fixtures, and (c)
//! cross-validate the simulator — a property test feeds measured
//! probabilities back through Eq. 1/Eq. 2 and checks they reproduce the
//! measured AMAT/APPR.

use hybridmem_device::{DiskCharacteristics, MemoryCharacteristics};
use hybridmem_types::{Error, Nanojoules, Nanoseconds, Result, PAGE_FACTOR};
use serde::{Deserialize, Serialize};

/// Probability inputs of Eq. 1 / Eq. 2, per Table I.
///
/// All probabilities are per memory request. `hit_dram + hit_nvm + miss`
/// must equal 1; the read/write splits are conditional probabilities within
/// each hit class and must each sum to 1 (when the class has any mass).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Probabilities {
    /// `PHitDRAM` — probability a request hits DRAM.
    pub hit_dram: f64,
    /// `PHitNVM` — probability a request hits NVM.
    pub hit_nvm: f64,
    /// `PMiss` — probability a request misses main memory.
    pub miss: f64,
    /// `PRDRAM` — probability a DRAM hit is a read.
    pub read_given_dram: f64,
    /// `PRNVM` — probability an NVM hit is a read.
    pub read_given_nvm: f64,
    /// `PMigD` — NVM→DRAM migrations per request.
    pub migrate_to_dram: f64,
    /// `PMigN` — DRAM→NVM migrations per request.
    pub migrate_to_nvm: f64,
    /// `PDiskToD` — fraction of misses filled into DRAM.
    pub disk_to_dram: f64,
    /// `PDiskToN` — fraction of misses filled into NVM.
    pub disk_to_nvm: f64,
}

impl Probabilities {
    /// Validates the probability simplex constraints.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when a value is outside `[0, 1]`
    /// (migration rates may exceed 1 and are only required non-negative),
    /// when `hit_dram + hit_nvm + miss` differs from 1 by more than 1e-9,
    /// or when `disk_to_dram + disk_to_nvm` does (given any miss mass).
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("hit_dram", self.hit_dram),
            ("hit_nvm", self.hit_nvm),
            ("miss", self.miss),
            ("read_given_dram", self.read_given_dram),
            ("read_given_nvm", self.read_given_nvm),
            ("disk_to_dram", self.disk_to_dram),
            ("disk_to_nvm", self.disk_to_nvm),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(Error::invalid_config(format!(
                    "{name} must be a probability in [0, 1], got {v}"
                )));
            }
        }
        for (name, v) in [
            ("migrate_to_dram", self.migrate_to_dram),
            ("migrate_to_nvm", self.migrate_to_nvm),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(Error::invalid_config(format!(
                    "{name} must be non-negative, got {v}"
                )));
            }
        }
        let total = self.hit_dram + self.hit_nvm + self.miss;
        if (total - 1.0).abs() > 1e-9 {
            return Err(Error::invalid_config(format!(
                "hit_dram + hit_nvm + miss must be 1, got {total}"
            )));
        }
        if self.miss > 0.0 {
            let fill = self.disk_to_dram + self.disk_to_nvm;
            if (fill - 1.0).abs() > 1e-9 {
                return Err(Error::invalid_config(format!(
                    "disk_to_dram + disk_to_nvm must be 1, got {fill}"
                )));
            }
        }
        Ok(())
    }
}

/// The full Table I parameter set: probabilities plus device constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Request-mix and migration probabilities.
    pub probabilities: Probabilities,
    /// DRAM technology constants (Table IV row 1).
    pub dram: MemoryCharacteristics,
    /// NVM technology constants (Table IV row 2).
    pub nvm: MemoryCharacteristics,
    /// Disk model (Table II).
    pub disk: DiskCharacteristics,
    /// `PageFactor` — memory accesses per page move.
    pub page_factor: u64,
}

impl ModelParams {
    /// Creates a parameter set with the paper's device constants
    /// (Table IV, Table II) and `PageFactor` = 512.
    #[must_use]
    pub fn date2016(probabilities: Probabilities) -> Self {
        Self {
            probabilities,
            dram: MemoryCharacteristics::dram_date2016(),
            nvm: MemoryCharacteristics::pcm_date2016(),
            disk: DiskCharacteristics::hdd_date2016(),
            page_factor: PAGE_FACTOR,
        }
    }

    /// Average Memory Access Time — Eq. 1 of the paper, term by term.
    ///
    /// ```text
    /// AMAT = PHitDRAM · (PRDRAM·TRDRAM + PWDRAM·TWDRAM)
    ///      + PHitNVM  · (PRNVM·TRNVM  + PWNVM·TWNVM)
    ///      + PMiss · TDisk
    ///      + PMigD · PageFactor · (TRNVM + TWDRAM)
    ///      + PMigN · PageFactor · (TRDRAM + TWNVM)
    /// ```
    #[must_use]
    pub fn amat(&self) -> Nanoseconds {
        let p = &self.probabilities;
        #[allow(clippy::cast_precision_loss)]
        let pf = self.page_factor as f64;
        let dram_hit = p.hit_dram
            * (p.read_given_dram * self.dram.read_latency.value()
                + (1.0 - p.read_given_dram) * self.dram.write_latency.value());
        let nvm_hit = p.hit_nvm
            * (p.read_given_nvm * self.nvm.read_latency.value()
                + (1.0 - p.read_given_nvm) * self.nvm.write_latency.value());
        let miss = p.miss * self.disk.access_latency.value();
        let mig_d = p.migrate_to_dram
            * pf
            * (self.nvm.read_latency.value() + self.dram.write_latency.value());
        let mig_n = p.migrate_to_nvm
            * pf
            * (self.dram.read_latency.value() + self.nvm.write_latency.value());
        Nanoseconds::new(dram_hit + nvm_hit + miss + mig_d + mig_n)
    }

    /// Average (dynamic) Power Per Request — Eq. 2 of the paper.
    ///
    /// ```text
    /// APPR = PHitDRAM · (PRDRAM·PoRDRAM + PWDRAM·PoWDRAM)
    ///      + PHitNVM  · (PRNVM·PoRNVM  + PWNVM·PoWNVM)
    ///      + PMiss · PDiskToD · PageFactor · PoWDRAM
    ///      + PMiss · PDiskToN · PageFactor · PoWNVM
    ///      + PMigD · PageFactor · (PoRNVM + PoWDRAM)
    ///      + PMigN · PageFactor · (PoRDRAM + PoWNVM)
    /// ```
    ///
    /// Add the Eq. 3 static share via [`TimeModel::static_energy_per_request`]
    /// for the full power picture.
    #[must_use]
    pub fn appr(&self) -> Nanojoules {
        let p = &self.probabilities;
        #[allow(clippy::cast_precision_loss)]
        let pf = self.page_factor as f64;
        let dram_hit = p.hit_dram
            * (p.read_given_dram * self.dram.read_energy.value()
                + (1.0 - p.read_given_dram) * self.dram.write_energy.value());
        let nvm_hit = p.hit_nvm
            * (p.read_given_nvm * self.nvm.read_energy.value()
                + (1.0 - p.read_given_nvm) * self.nvm.write_energy.value());
        let fill_d = p.miss * p.disk_to_dram * pf * self.dram.write_energy.value();
        let fill_n = p.miss * p.disk_to_nvm * pf * self.nvm.write_energy.value();
        let mig_d = p.migrate_to_dram
            * pf
            * (self.nvm.read_energy.value() + self.dram.write_energy.value());
        let mig_n =
            p.migrate_to_nvm * pf * (self.dram.read_energy.value() + self.nvm.write_energy.value());
        Nanojoules::new(dram_hit + nvm_hit + fill_d + fill_n + mig_d + mig_n)
    }

    /// Eq. 1, term by term. The terms sum to [`ModelParams::amat`].
    #[must_use]
    pub fn amat_components(&self) -> AmatComponents {
        let p = &self.probabilities;
        #[allow(clippy::cast_precision_loss)]
        let pf = self.page_factor as f64;
        AmatComponents {
            dram_hits: p.hit_dram
                * (p.read_given_dram * self.dram.read_latency.value()
                    + (1.0 - p.read_given_dram) * self.dram.write_latency.value()),
            nvm_hits: p.hit_nvm
                * (p.read_given_nvm * self.nvm.read_latency.value()
                    + (1.0 - p.read_given_nvm) * self.nvm.write_latency.value()),
            faults: p.miss * self.disk.access_latency.value(),
            migrations_to_dram: p.migrate_to_dram
                * pf
                * (self.nvm.read_latency.value() + self.dram.write_latency.value()),
            migrations_to_nvm: p.migrate_to_nvm
                * pf
                * (self.dram.read_latency.value() + self.nvm.write_latency.value()),
        }
    }

    /// Eq. 2, term by term. The terms sum to [`ModelParams::appr`].
    #[must_use]
    pub fn appr_components(&self) -> ApprComponents {
        let p = &self.probabilities;
        #[allow(clippy::cast_precision_loss)]
        let pf = self.page_factor as f64;
        ApprComponents {
            dram_hits: p.hit_dram
                * (p.read_given_dram * self.dram.read_energy.value()
                    + (1.0 - p.read_given_dram) * self.dram.write_energy.value()),
            nvm_hits: p.hit_nvm
                * (p.read_given_nvm * self.nvm.read_energy.value()
                    + (1.0 - p.read_given_nvm) * self.nvm.write_energy.value()),
            fills_to_dram: p.miss * p.disk_to_dram * pf * self.dram.write_energy.value(),
            fills_to_nvm: p.miss * p.disk_to_nvm * pf * self.nvm.write_energy.value(),
            migrations_to_dram: p.migrate_to_dram
                * pf
                * (self.nvm.read_energy.value() + self.dram.write_energy.value()),
            migrations_to_nvm: p.migrate_to_nvm
                * pf
                * (self.dram.read_energy.value() + self.nvm.write_energy.value()),
        }
    }

    /// The break-even NVM→DRAM migration rate: the `PMigD` (with a matching
    /// `PMigN` for the swap-back) at which moving a page to DRAM stops
    /// paying for itself, given how many future hits the page will receive
    /// in DRAM instead of NVM.
    ///
    /// A page promoted from NVM saves `(T_NVM − T_DRAM)` per subsequent
    /// read hit; a swap costs `PageFactor · (TR_NVM + TW_DRAM + TR_DRAM +
    /// TW_NVM)` of latency. The returned value is the number of *future
    /// read hits* a promoted page must collect before the swap breaks even
    /// — the quantitative justification for the paper's promotion
    /// thresholds.
    ///
    /// # Examples
    ///
    /// ```
    /// use hybridmem_core::{ModelParams, Probabilities};
    ///
    /// let model = ModelParams::date2016(Probabilities {
    ///     hit_dram: 1.0, hit_nvm: 0.0, miss: 0.0,
    ///     read_given_dram: 1.0, read_given_nvm: 1.0,
    ///     migrate_to_dram: 0.0, migrate_to_nvm: 0.0,
    ///     disk_to_dram: 1.0, disk_to_nvm: 0.0,
    /// });
    /// // With Table IV constants a swap costs 512·550 ns and each read hit
    /// // saves 50 ns, so >5,632 hits are needed to amortize one swap.
    /// assert_eq!(model.breakeven_hits_per_promotion().ceil() as u64, 5_632);
    /// ```
    #[must_use]
    pub fn breakeven_hits_per_promotion(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let pf = self.page_factor as f64;
        let swap_cost = pf
            * (self.nvm.read_latency.value()
                + self.dram.write_latency.value()
                + self.dram.read_latency.value()
                + self.nvm.write_latency.value());
        let per_hit_saving = self.nvm.read_latency.value() - self.dram.read_latency.value();
        swap_cost / per_hit_saving
    }
}

/// Per-term breakdown of Eq. 1 (all values in nanoseconds per request).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmatComponents {
    /// `PHitDRAM · (PRDRAM·TRDRAM + PWDRAM·TWDRAM)`.
    pub dram_hits: f64,
    /// `PHitNVM · (PRNVM·TRNVM + PWNVM·TWNVM)`.
    pub nvm_hits: f64,
    /// `PMiss · TDisk`.
    pub faults: f64,
    /// `PMigD · PageFactor · (TRNVM + TWDRAM)`.
    pub migrations_to_dram: f64,
    /// `PMigN · PageFactor · (TRDRAM + TWNVM)`.
    pub migrations_to_nvm: f64,
}

impl AmatComponents {
    /// Sum of all terms — equals [`ModelParams::amat`].
    #[must_use]
    pub fn total(&self) -> f64 {
        self.dram_hits
            + self.nvm_hits
            + self.faults
            + self.migrations_to_dram
            + self.migrations_to_nvm
    }

    /// Fraction of the total contributed by migrations (both directions);
    /// 0 when the total is 0.
    #[must_use]
    pub fn migration_share(&self) -> f64 {
        let total = self.total();
        if total > 0.0 {
            (self.migrations_to_dram + self.migrations_to_nvm) / total
        } else {
            0.0
        }
    }
}

/// Per-term breakdown of Eq. 2 (all values in nanojoules per request).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApprComponents {
    /// Demand-hit energy in DRAM.
    pub dram_hits: f64,
    /// Demand-hit energy in NVM.
    pub nvm_hits: f64,
    /// Page-fault fill energy into DRAM.
    pub fills_to_dram: f64,
    /// Page-fault fill energy into NVM.
    pub fills_to_nvm: f64,
    /// NVM→DRAM migration energy.
    pub migrations_to_dram: f64,
    /// DRAM→NVM migration energy.
    pub migrations_to_nvm: f64,
}

impl ApprComponents {
    /// Sum of all terms — equals [`ModelParams::appr`].
    #[must_use]
    pub fn total(&self) -> f64 {
        self.dram_hits
            + self.nvm_hits
            + self.fills_to_dram
            + self.fills_to_nvm
            + self.migrations_to_dram
            + self.migrations_to_nvm
    }

    /// Fraction of the total contributed by migrations; 0 when total is 0.
    #[must_use]
    pub fn migration_share(&self) -> f64 {
        let total = self.total();
        if total > 0.0 {
            (self.migrations_to_dram + self.migrations_to_nvm) / total
        } else {
            0.0
        }
    }
}

/// Workload-duration model feeding Eq. 3's prorated static power.
///
/// The paper prorates static power over the requests of "a given time
/// interval" measured on COTSon; with only the trace available, we estimate
/// the interval from two components (see `DESIGN.md`):
///
/// * a compute term proportional to the data footprint (CPU work per page
///   of data — dominant for compute-bound workloads like `blackscholes`),
/// * a service term proportional to the memory request count (dominant for
///   memory-bound workloads like `streamcluster`).
///
/// This reproduces the paper's observation that workloads with a high LLC
/// hit ratio (few memory requests per unit time) pay a *larger* static
/// share per request, and that `streamcluster`'s burst of accesses over a
/// small footprint makes dynamic power dominate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeModel {
    /// CPU time spent per footprint page, in nanoseconds.
    pub compute_ns_per_page: f64,
    /// Mean service/gap time per memory request, in nanoseconds.
    pub service_ns_per_request: f64,
}

impl TimeModel {
    /// The calibration used throughout the evaluation: 250 µs of CPU work
    /// per data page plus 50 ns per memory request. Chosen so the DRAM-only
    /// static share lands in the 60–80 % band of Fig. 1 for mid-size
    /// footprints while `streamcluster`'s burst stays dynamic-dominated.
    #[must_use]
    pub fn date2016() -> Self {
        Self {
            compute_ns_per_page: 250_000.0,
            service_ns_per_request: 50.0,
        }
    }

    /// Estimated workload duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self, footprint_pages: u64, requests: u64) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            footprint_pages as f64 * self.compute_ns_per_page
                + requests as f64 * self.service_ns_per_request
        }
    }

    /// Eq. 3: static energy prorated per request.
    ///
    /// `static_power_nj_s` is the *total* static power of all provisioned
    /// memory (DRAM + NVM). Returns zero for an empty trace.
    #[must_use]
    pub fn static_energy_per_request(
        &self,
        static_power_nj_s: f64,
        footprint_pages: u64,
        requests: u64,
    ) -> Nanojoules {
        if requests == 0 {
            return Nanojoules::ZERO;
        }
        let duration_s = self.duration_ns(footprint_pages, requests) * 1e-9;
        #[allow(clippy::cast_precision_loss)]
        Nanojoules::new(static_power_nj_s * duration_s / requests as f64)
    }
}

impl Default for TimeModel {
    fn default() -> Self {
        Self::date2016()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-checkable probability set.
    fn probs() -> Probabilities {
        Probabilities {
            hit_dram: 0.6,
            hit_nvm: 0.3,
            miss: 0.1,
            read_given_dram: 0.5,
            read_given_nvm: 1.0,
            migrate_to_dram: 0.01,
            migrate_to_nvm: 0.02,
            disk_to_dram: 1.0,
            disk_to_nvm: 0.0,
        }
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        assert!(probs().validate().is_ok());

        let mut p = probs();
        p.miss = 0.5; // breaks the simplex
        assert!(p.validate().is_err());

        let mut p = probs();
        p.hit_dram = -0.1;
        assert!(p.validate().is_err());

        let mut p = probs();
        p.disk_to_dram = 0.5; // fills no longer sum to 1
        assert!(p.validate().is_err());

        let mut p = probs();
        p.migrate_to_dram = -1.0;
        assert!(p.validate().is_err());

        // Migration rates above 1 are legal (they are rates, not probs).
        let mut p = probs();
        p.migrate_to_dram = 1.5;
        assert!(p.validate().is_ok());
    }

    #[test]
    fn amat_matches_hand_computation() {
        let m = ModelParams::date2016(probs());
        // DRAM hits: 0.6 * (0.5*50 + 0.5*50)                  = 30
        // NVM hits:  0.3 * (1.0*100 + 0.0*350)                = 30
        // Miss:      0.1 * 5e6                                = 500_000
        // MigD:      0.01 * 512 * (100 + 50)                  = 768
        // MigN:      0.02 * 512 * (50 + 350)                  = 4096
        let expected = 30.0 + 30.0 + 500_000.0 + 768.0 + 4096.0;
        assert!((m.amat().value() - expected).abs() < 1e-9, "{}", m.amat());
    }

    #[test]
    fn appr_matches_hand_computation() {
        let m = ModelParams::date2016(probs());
        // DRAM hits: 0.6 * (0.5*3.2 + 0.5*3.2)                = 1.92
        // NVM hits:  0.3 * (1.0*6.4)                          = 1.92
        // Fill DRAM: 0.1 * 1.0 * 512 * 3.2                    = 163.84
        // Fill NVM:  0                                        = 0
        // MigD:      0.01 * 512 * (6.4 + 3.2)                 = 49.152
        // MigN:      0.02 * 512 * (3.2 + 32)                  = 360.448
        let expected = 1.92 + 1.92 + 163.84 + 49.152 + 360.448;
        assert!((m.appr().value() - expected).abs() < 1e-9, "{}", m.appr());
    }

    #[test]
    fn migration_free_workload_has_no_migration_terms() {
        let mut p = probs();
        p.migrate_to_dram = 0.0;
        p.migrate_to_nvm = 0.0;
        let m = ModelParams::date2016(p);
        assert!((m.amat().value() - 500_060.0).abs() < 1e-9);
    }

    #[test]
    fn more_migrations_never_improve_amat_or_appr() {
        let base = ModelParams::date2016(probs());
        let mut heavier = probs();
        heavier.migrate_to_dram += 0.05;
        let heavier = ModelParams::date2016(heavier);
        assert!(heavier.amat() > base.amat());
        assert!(heavier.appr() > base.appr());
    }

    #[test]
    fn components_sum_to_the_closed_forms() {
        let m = ModelParams::date2016(probs());
        let amat = m.amat_components();
        assert!((amat.total() - m.amat().value()).abs() < 1e-9);
        let appr = m.appr_components();
        assert!((appr.total() - m.appr().value()).abs() < 1e-9);
        assert!(amat.migration_share() > 0.0 && amat.migration_share() < 1.0);
        assert!(appr.migration_share() > 0.0 && appr.migration_share() < 1.0);
    }

    #[test]
    fn migration_share_is_zero_without_migrations() {
        let mut p = probs();
        p.migrate_to_dram = 0.0;
        p.migrate_to_nvm = 0.0;
        let m = ModelParams::date2016(p);
        assert_eq!(m.amat_components().migration_share(), 0.0);
        assert_eq!(m.appr_components().migration_share(), 0.0);
    }

    #[test]
    fn breakeven_quantifies_the_threshold_rationale() {
        let m = ModelParams::date2016(probs());
        // Table IV: swap = 512·(100+50+50+350) = 281,600 ns; per-read-hit
        // saving = 50 ns → 5,632 hits.
        assert!((m.breakeven_hits_per_promotion() - 5632.0).abs() < 1e-9);
    }

    #[test]
    fn duration_combines_compute_and_service() {
        let t = TimeModel::date2016();
        let d = t.duration_ns(100, 1_000);
        assert!((d - (100.0 * 250_000.0 + 1_000.0 * 50.0)).abs() < 1e-9);
    }

    #[test]
    fn static_energy_per_request_follows_eq3() {
        let t = TimeModel {
            compute_ns_per_page: 0.0,
            service_ns_per_request: 100.0,
        };
        // Duration = 1000 req * 100 ns = 1e5 ns = 1e-4 s.
        // Static power 1e6 nJ/s → 100 nJ total → 0.1 nJ/request.
        let e = t.static_energy_per_request(1e6, 50, 1_000);
        assert!((e.value() - 0.1).abs() < 1e-12, "{e}");
        assert_eq!(t.static_energy_per_request(1e6, 50, 0), Nanojoules::ZERO);
    }

    #[test]
    fn compute_bound_workloads_pay_more_static_per_request() {
        let t = TimeModel::date2016();
        let sparse = t.static_energy_per_request(1e6, 1_000, 10_000);
        let dense = t.static_energy_per_request(1e6, 1_000, 10_000_000);
        assert!(
            sparse > dense,
            "fewer requests over the same footprint ⇒ higher static share"
        );
    }
}
