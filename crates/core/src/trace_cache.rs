//! A process-wide cache of materialized traces, shared across experiment
//! cells.
//!
//! The evaluation matrix runs many `(workload, policy)` cells, and every
//! cell of one workload replays the *same* deterministic trace:
//! [`TraceGenerator`] is a pure function of `(spec, seed)`. Without a
//! cache, `ExperimentConfig::compare` regenerates each workload's trace
//! once per policy (7× for the full matrix) and every ablation sweep
//! regenerates it once per sweep point. [`TraceCache`] materializes each
//! trace once into an `Arc<[PageAccess]>` and hands the same immutable
//! buffer to every cell, including cells running concurrently on the
//! worker pool (see [`compare_policies`](crate::compare_policies)).
//!
//! # Keying
//!
//! Entries are keyed by a stable fingerprint: the FxHash of the spec's
//! canonical JSON serialization plus the generator seed. The full
//! `(spec, seed)` pair is stored alongside each entry and verified on
//! lookup, so a fingerprint collision degrades to a cache miss rather
//! than silently replaying the wrong workload.
//!
//! # Memory bounds
//!
//! The cache holds at most `budget_bytes` of trace data (the byte cost of
//! a trace is known up front: `total_accesses × size_of::<PageAccess>()`).
//! Inserting past the budget evicts least-recently-used entries first. A
//! single trace larger than the whole budget is never materialized —
//! [`TraceCache::try_get`] returns `None` and callers fall back to
//! streaming generation, so full-scale (uncapped) runs cannot exhaust
//! memory through the cache.
//!
//! Trace *generation* happens outside the cache lock: concurrent workers
//! asking for the same workload block on a per-entry [`OnceLock`] (one
//! generates, the rest wait), while workers asking for different
//! workloads generate in parallel.
//!
//! # Binary spill
//!
//! When a spill directory is configured (the global cache reads
//! `HYBRIDMEM_TRACE_SPILL_DIR`, defaulting to a per-user directory under
//! the system temp dir; set the variable to the empty string to disable),
//! each materialized trace is also written once as a
//! [`binfmt`](hybridmem_trace::binfmt) file named
//! `{fingerprint:016x}.hmtrace`. Later processes — repeated CLI runs, the
//! bench harness, CI — load the spill instead of re-generating, and
//! *oversize* traces that can never be materialized replay straight from
//! the file in fixed-size chunks via [`TraceCache::open_stream`]. Spill
//! files carry the full spec JSON and seed in their header and are
//! verified on load, so a stale or colliding file degrades to regeneration
//! rather than replaying the wrong workload.

use std::fs::File;
use std::io::{BufReader, Cursor, Read};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use hybridmem_metrics::MetricsRegistry;
use hybridmem_trace::binfmt::{self, BinTraceReader, BinTraceStream};
use hybridmem_trace::{TraceGenerator, WorkloadSpec};
use hybridmem_types::{fx_hash_one, FxHashMap, PageAccess};
use serde::{Deserialize, Serialize};

use crate::faultinject::FaultPlan;

/// Default byte budget of the global cache: enough for the full default
/// 1M-access × 12-workload suite (~192 MB) with headroom for sweeps.
pub const DEFAULT_BUDGET_BYTES: usize = 1 << 30;

/// Byte source behind a spill replay stream. Production replays stream
/// from the file; with a [`FaultPlan`] installed the file is pre-read so
/// the scripted read faults can corrupt the in-memory image before the
/// format layer sees it (exactly how [`TraceCache::try_load_spill`]
/// injects faults on the materialization path).
pub enum SpillSource {
    /// Buffered read straight from the spill file (no fault plan).
    File(BufReader<File>),
    /// Pre-read (and possibly fault-corrupted) image of the file.
    Memory(Cursor<Vec<u8>>),
}

impl Read for SpillSource {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::File(reader) => reader.read(buf),
            Self::Memory(cursor) => cursor.read(buf),
        }
    }
}

/// One cached trace: generated lazily, at most once, by whichever worker
/// gets there first.
struct TraceSlot {
    spec: WorkloadSpec,
    seed: u64,
    trace: OnceLock<Arc<[PageAccess]>>,
}

/// Cross-process spill effectiveness, counted outside the cache lock
/// (materialization and streaming both happen without it).
#[derive(Default)]
struct SpillCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    write_errors: AtomicU64,
}

struct Entry {
    slot: Arc<TraceSlot>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    entries: FxHashMap<u64, Entry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Point-in-time effectiveness counters of a [`TraceCache`], exposed by
/// [`TraceCache::stats`] and surfaced in `results/throughput.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCacheStats {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that had to generate (or re-generate) the trace.
    pub misses: u64,
    /// Entries evicted by the LRU budget loop.
    pub evictions: u64,
    /// Lookups refused because one trace alone exceeds the budget
    /// (callers fall back to streaming generation).
    pub oversize_rejections: u64,
    /// Traces currently resident.
    pub resident_traces: u64,
    /// Bytes currently accounted against the budget.
    pub resident_bytes: u64,
    /// Materializations and streams served from a binary spill file
    /// instead of the generator.
    #[serde(default)]
    pub spill_hits: u64,
    /// Materializations and streams that found no usable spill file and
    /// had to generate.
    #[serde(default)]
    pub spill_misses: u64,
    /// Bytes of spilled trace data loaded into memory (the safe stand-in
    /// for "bytes mmapped": the binary file is read and decoded in bulk).
    #[serde(default)]
    pub spill_bytes_read: u64,
    /// Bytes of trace data written to spill files by this process.
    #[serde(default)]
    pub spill_bytes_written: u64,
    /// Spill writes that failed (directory creation, file write, or
    /// rename) — previously swallowed silently, now counted so a
    /// campaign that quietly lost its spill acceleration is visible in
    /// `results/throughput.json`.
    #[serde(default)]
    pub spill_write_errors: u64,
}

/// A byte-budgeted, LRU-evicting cache of materialized traces.
///
/// # Examples
///
/// ```
/// use hybridmem_core::TraceCache;
/// use hybridmem_trace::parsec;
///
/// let cache = TraceCache::new(64 << 20);
/// let spec = parsec::spec("bodytrack")?.capped(5_000);
/// let first = cache.try_get(&spec, 42).expect("fits the budget");
/// let second = cache.try_get(&spec, 42).expect("cached");
/// assert!(std::sync::Arc::ptr_eq(&first, &second), "same buffer, not a copy");
/// assert_eq!(first.len() as u64, spec.total_accesses());
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
pub struct TraceCache {
    inner: Mutex<Inner>,
    budget_bytes: usize,
    /// Counted outside the mutex — the oversize check rejects before
    /// locking, so this must not require the lock either.
    oversize_rejections: AtomicU64,
    /// Directory of `{fingerprint:016x}.hmtrace` spill files; `None`
    /// disables the spill entirely (in-memory cache only).
    spill_dir: Option<PathBuf>,
    spill: SpillCounters,
    /// Injected-fault schedule applied to spill reads and writes; the
    /// global cache picks it up from `HYBRIDMEM_FAULT_PLAN`.
    fault_plan: Option<Arc<FaultPlan>>,
}

impl TraceCache {
    /// Creates a cache bounded to `budget_bytes` of trace data, with the
    /// binary spill disabled.
    #[must_use]
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            // xtask:allow(hot-path-lock, why=single mutex guarding the whole cache map; one acquisition per trace request, not per simulated access)
            inner: Mutex::new(Inner {
                entries: FxHashMap::default(),
                bytes: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            budget_bytes,
            oversize_rejections: AtomicU64::new(0),
            spill_dir: None,
            spill: SpillCounters::default(),
            fault_plan: None,
        }
    }

    /// Creates a cache that additionally spills each generated trace to a
    /// binary file under `dir` and replays from such files when present.
    #[must_use]
    pub fn with_spill_dir(budget_bytes: usize, dir: impl Into<PathBuf>) -> Self {
        Self {
            spill_dir: Some(dir.into()),
            ..Self::new(budget_bytes)
        }
    }

    /// Installs an injected-fault schedule: spill reads and writes
    /// consult `plan` before touching disk, so tests (and the CI chaos
    /// job) can script I/O errors, bit-flips, and truncations against
    /// this cache deterministically.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The spill directory from the environment: the value of
    /// `HYBRIDMEM_TRACE_SPILL_DIR` (empty string = spill disabled), or a
    /// fixed directory under the system temp dir.
    fn default_spill_dir() -> Option<PathBuf> {
        match std::env::var_os("HYBRIDMEM_TRACE_SPILL_DIR") {
            Some(dir) if dir.is_empty() => None,
            Some(dir) => Some(PathBuf::from(dir)),
            None => Some(std::env::temp_dir().join("hybridmem-trace-cache")),
        }
    }

    /// The process-wide cache used by
    /// [`ExperimentConfig::compare`](crate::ExperimentConfig::compare), the
    /// parallel matrix runner, and the sweep helpers, with
    /// [`DEFAULT_BUDGET_BYTES`] of capacity and the environment-selected
    /// spill directory (see [`Self::default_spill_dir`] in the source).
    #[must_use]
    pub fn global() -> &'static Self {
        static GLOBAL: OnceLock<TraceCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let fault_plan = match FaultPlan::from_env() {
                Ok(plan) => plan.map(Arc::new),
                Err(e) => {
                    eprintln!("warning: ignoring malformed HYBRIDMEM_FAULT_PLAN: {e}");
                    None
                }
            };
            Self {
                spill_dir: Self::default_spill_dir(),
                fault_plan,
                ..Self::new(DEFAULT_BUDGET_BYTES)
            }
        })
    }

    /// Stable fingerprint of a `(spec, seed)` cell.
    fn fingerprint(spec: &WorkloadSpec, seed: u64) -> u64 {
        // JSON is the spec's canonical form (field order is declaration
        // order, stable across runs and platforms); hashing it sidesteps
        // WorkloadSpec's lack of `Hash` (it holds f64 fields).
        let canonical = serde_json::to_string(spec).unwrap_or_default();
        fx_hash_one(&(canonical, seed))
    }

    /// Byte cost of materializing `spec`'s trace, known before generating.
    fn cost_bytes(spec: &WorkloadSpec) -> usize {
        usize::try_from(spec.total_accesses())
            .unwrap_or(usize::MAX)
            .saturating_mul(std::mem::size_of::<PageAccess>())
    }

    /// The materialized trace for `(spec, seed)`, generating and caching
    /// it on first use, or `None` when the trace alone would exceed the
    /// cache budget (callers then stream the generator instead).
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking generator.
    #[must_use]
    pub fn try_get(&self, spec: &WorkloadSpec, seed: u64) -> Option<Arc<[PageAccess]>> {
        let cost = Self::cost_bytes(spec);
        if cost > self.budget_bytes {
            // xtask:allow(atomic-ordering, why=monotonic stats counters; readers tolerate any interleaving)
            self.oversize_rejections.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let key = Self::fingerprint(spec, seed);
        let slot = {
            // xtask:allow(hot-path-lock, why=one acquisition per trace request, not per simulated access)
            let mut guard = self.inner.lock().expect("trace cache poisoned");
            let inner = &mut *guard;
            inner.tick += 1;
            let tick = inner.tick;
            // Fingerprint collisions verify the full key; a mismatch is
            // treated as a miss and replaces the stale entry.
            let hit = match inner.entries.get_mut(&key) {
                Some(entry) if entry.slot.spec == *spec && entry.slot.seed == seed => {
                    entry.last_used = tick;
                    Some(Arc::clone(&entry.slot))
                }
                _ => None,
            };
            match hit {
                Some(slot) => {
                    inner.hits += 1;
                    slot
                }
                None => {
                    inner.misses += 1;
                    if let Some(stale) = inner.entries.remove(&key) {
                        inner.bytes -= stale.bytes;
                    }
                    while inner.bytes + cost > self.budget_bytes {
                        let victim = inner
                            .entries
                            .iter()
                            .min_by_key(|(_, entry)| entry.last_used)
                            .map(|(&k, _)| k)
                            .expect("over budget implies a resident entry");
                        let evicted = inner.entries.remove(&victim).expect("victim resident");
                        inner.bytes -= evicted.bytes;
                        inner.evictions += 1;
                    }
                    let slot = Arc::new(TraceSlot {
                        spec: spec.clone(),
                        seed,
                        trace: OnceLock::new(),
                    });
                    inner.bytes += cost;
                    inner.entries.insert(
                        key,
                        Entry {
                            slot: Arc::clone(&slot),
                            bytes: cost,
                            last_used: tick,
                        },
                    );
                    slot
                }
            }
        };
        // Generate outside the lock: same-trace callers serialize on the
        // slot's OnceLock; different traces generate concurrently.
        Some(self.materialize(key, &slot))
    }

    /// The slot's trace, loading it from a spill file or generating (and
    /// spilling) it on first call. Concurrent callers block until the
    /// winning materializer finishes.
    fn materialize(&self, key: u64, slot: &TraceSlot) -> Arc<[PageAccess]> {
        Arc::clone(slot.trace.get_or_init(|| {
            let spec_json = Self::spec_json(&slot.spec);
            if let Some(trace) = self.try_load_spill(key, &spec_json, slot.seed) {
                return trace;
            }
            let trace: Arc<[PageAccess]> = TraceGenerator::new(slot.spec.clone(), slot.seed)
                .map(PageAccess::from)
                .collect();
            self.try_write_spill(key, &spec_json, slot.seed, trace.iter().copied());
            trace
        }))
    }

    /// Canonical spec serialization shared by the fingerprint and the
    /// spill-file header, so a spill written for one `(spec, seed)` can
    /// never verify against another.
    fn spec_json(spec: &WorkloadSpec) -> String {
        serde_json::to_string(spec).unwrap_or_default()
    }

    /// Path of the spill file for fingerprint `key`, when spilling is on.
    fn spill_path(&self, key: u64) -> Option<PathBuf> {
        self.spill_dir
            .as_deref()
            .map(|dir| dir.join(format!("{key:016x}.hmtrace")))
    }

    /// Reads the spill file at `path` into memory, applying any
    /// injected read faults to the image first. `None` means the file
    /// is unreadable — really or by script; the caller cannot tell the
    /// difference, which is the point.
    fn read_spill_image(&self, path: &Path) -> Option<Vec<u8>> {
        let mut bytes = std::fs::read(path).ok()?;
        if let Some(plan) = &self.fault_plan {
            plan.corrupt_spill_read(&mut bytes).ok()?;
        }
        Some(bytes)
    }

    /// Loads and verifies the spill file for `key`, counting a spill hit
    /// or miss. Any failure — absent file, truncation, bit-flip (caught
    /// by the version-2 checksum trailer), or a header naming a
    /// different `(spec, seed)` — is a miss, never an error: the caller
    /// falls back to the generator.
    fn try_load_spill(&self, key: u64, spec_json: &str, seed: u64) -> Option<Arc<[PageAccess]>> {
        let path = self.spill_path(key)?;
        let loaded = self
            .read_spill_image(&path)
            .and_then(|bytes| BinTraceReader::from_reader(bytes.as_slice()).ok())
            .filter(|reader| reader.header().matches(spec_json, seed));
        let Some(reader) = loaded else {
            // xtask:allow(atomic-ordering, why=monotonic stats counters; readers tolerate any interleaving)
            self.spill.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        // xtask:allow(atomic-ordering, why=monotonic stats counters; readers tolerate any interleaving)
        self.spill.hits.fetch_add(1, Ordering::Relaxed);
        self.spill.bytes_read.fetch_add(
            (reader.records().len() * binfmt::RECORD_BYTES) as u64,
            // xtask:allow(atomic-ordering, why=monotonic stats counters; readers tolerate any interleaving)
            Ordering::Relaxed,
        );
        Some(
            reader
                .records()
                .iter()
                .map(|record| record.access())
                .collect(),
        )
    }

    /// Books one failed spill write in the stats.
    fn count_spill_write_error(&self) {
        // xtask:allow(atomic-ordering, why=monotonic stats counters; readers tolerate any interleaving)
        self.spill.write_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Best-effort spill write: the trace lands under a temporary name and
    /// is renamed into place so concurrent processes never observe a
    /// half-written file. I/O failures never propagate — the spill is an
    /// optimization, not a correctness dependency — but every failure is
    /// counted in [`TraceCacheStats::spill_write_errors`] so a campaign
    /// that quietly lost its spill acceleration is visible.
    fn try_write_spill<I>(&self, key: u64, spec_json: &str, seed: u64, accesses: I)
    where
        I: IntoIterator<Item = PageAccess>,
    {
        let Some(path) = self.spill_path(key) else {
            return;
        };
        let Some(dir) = path.parent() else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            self.count_spill_write_error();
            return;
        }
        if self
            .fault_plan
            .as_ref()
            .is_some_and(|plan| plan.fail_spill_write())
        {
            self.count_spill_write_error();
            return;
        }
        let tmp = dir.join(format!("{key:016x}.hmtrace.tmp.{}", std::process::id()));
        match binfmt::write_trace_file(&tmp, spec_json, seed, key, accesses) {
            Ok(count) => {
                if std::fs::rename(&tmp, &path).is_ok() {
                    self.spill.bytes_written.fetch_add(
                        count.saturating_mul(binfmt::RECORD_BYTES as u64),
                        // xtask:allow(atomic-ordering, why=monotonic stats counters; readers tolerate any interleaving)
                        Ordering::Relaxed,
                    );
                } else {
                    self.count_spill_write_error();
                    let _ = std::fs::remove_file(&tmp);
                }
            }
            Err(_) => {
                self.count_spill_write_error();
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    /// Opens a verified spill stream at `path`. Without a fault plan
    /// this streams straight from the file; with one installed the
    /// whole file is pre-read so the scripted read faults can apply to
    /// the image, mirroring [`Self::read_spill_image`].
    fn open_spill_stream(
        &self,
        path: &Path,
        spec_json: &str,
        seed: u64,
    ) -> Option<BinTraceStream<SpillSource>> {
        let source = if self.fault_plan.is_some() {
            SpillSource::Memory(Cursor::new(self.read_spill_image(path)?))
        } else {
            SpillSource::File(BufReader::new(File::open(path).ok()?))
        };
        BinTraceStream::from_reader(source, binfmt::STREAM_CHUNK_RECORDS)
            .ok()
            .filter(|stream| stream.header().matches(spec_json, seed))
    }

    /// Opens a chunked binary replay stream for `(spec, seed)` — the path
    /// for *oversize* traces that [`try_get`](Self::try_get) refuses to
    /// materialize. An existing verified spill file is replayed directly;
    /// otherwise the trace is generated **once**, streamed to disk without
    /// ever being resident, and replayed from the file — this run and
    /// every later one. Returns `None` when spilling is disabled or the
    /// file cannot be written (callers stream the generator instead).
    #[must_use]
    pub fn open_stream(
        &self,
        spec: &WorkloadSpec,
        seed: u64,
    ) -> Option<BinTraceStream<SpillSource>> {
        let key = Self::fingerprint(spec, seed);
        let path = self.spill_path(key)?;
        let spec_json = Self::spec_json(spec);
        if let Some(stream) = self.open_spill_stream(&path, &spec_json, seed) {
            // xtask:allow(atomic-ordering, why=monotonic stats counters; readers tolerate any interleaving)
            self.spill.hits.fetch_add(1, Ordering::Relaxed);
            self.spill.bytes_read.fetch_add(
                stream
                    .remaining()
                    .saturating_mul(binfmt::RECORD_BYTES as u64),
                // xtask:allow(atomic-ordering, why=monotonic stats counters; readers tolerate any interleaving)
                Ordering::Relaxed,
            );
            return Some(stream);
        }
        // xtask:allow(atomic-ordering, why=monotonic stats counters; readers tolerate any interleaving)
        self.spill.misses.fetch_add(1, Ordering::Relaxed);
        self.try_write_spill(
            key,
            &spec_json,
            seed,
            TraceGenerator::new(spec.clone(), seed).map(PageAccess::from),
        );
        let stream = self.open_spill_stream(&path, &spec_json, seed)?;
        self.spill.bytes_read.fetch_add(
            stream
                .remaining()
                .saturating_mul(binfmt::RECORD_BYTES as u64),
            // xtask:allow(atomic-ordering, why=monotonic stats counters; readers tolerate any interleaving)
            Ordering::Relaxed,
        );
        Some(stream)
    }

    /// Number of resident traces (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            // xtask:allow(hot-path-lock, why=diagnostics accessor, called off the hot path)
            .lock()
            .expect("trace cache poisoned")
            .entries
            .len()
    }

    /// True when no traces are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of trace data currently accounted against the budget.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        // xtask:allow(hot-path-lock, why=diagnostics accessor, called off the hot path)
        self.inner.lock().expect("trace cache poisoned").bytes
    }

    /// Snapshot of the cache's effectiveness counters.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn stats(&self) -> TraceCacheStats {
        // xtask:allow(hot-path-lock, why=diagnostics accessor, called off the hot path)
        let inner = self.inner.lock().expect("trace cache poisoned");
        TraceCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            oversize_rejections: self.oversize_rejections.load(Ordering::Relaxed), // xtask:allow(atomic-ordering, why=relaxed stats snapshot; exactness not required)
            resident_traces: inner.entries.len() as u64,
            resident_bytes: inner.bytes as u64,
            spill_hits: self.spill.hits.load(Ordering::Relaxed), // xtask:allow(atomic-ordering, why=relaxed stats snapshot)
            spill_misses: self.spill.misses.load(Ordering::Relaxed), // xtask:allow(atomic-ordering, why=relaxed stats snapshot)
            spill_bytes_read: self.spill.bytes_read.load(Ordering::Relaxed), // xtask:allow(atomic-ordering, why=relaxed stats snapshot)
            spill_bytes_written: self.spill.bytes_written.load(Ordering::Relaxed), // xtask:allow(atomic-ordering, why=relaxed stats snapshot)
            spill_write_errors: self.spill.write_errors.load(Ordering::Relaxed), // xtask:allow(atomic-ordering, why=relaxed stats snapshot)
        }
    }

    /// Exports the current [`TraceCacheStats`] into `registry` under
    /// `trace_cache.*` names.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    pub fn export_into(&self, registry: &mut MetricsRegistry) {
        let stats = self.stats();
        registry.add("trace_cache.hits", stats.hits);
        registry.add("trace_cache.misses", stats.misses);
        registry.add("trace_cache.evictions", stats.evictions);
        registry.add("trace_cache.oversize_rejections", stats.oversize_rejections);
        registry.add("trace_cache.spill_hits", stats.spill_hits);
        registry.add("trace_cache.spill_misses", stats.spill_misses);
        registry.add("trace_cache.spill_bytes_read", stats.spill_bytes_read);
        registry.add("trace_cache.spill_bytes_written", stats.spill_bytes_written);
        registry.add("trace_cache.spill_write_errors", stats.spill_write_errors);
        #[allow(clippy::cast_precision_loss)]
        {
            registry.set_gauge("trace_cache.resident_traces", stats.resident_traces as f64);
            registry.set_gauge("trace_cache.resident_bytes", stats.resident_bytes as f64);
        }
    }
}

impl std::fmt::Debug for TraceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCache")
            .field("budget_bytes", &self.budget_bytes)
            .field("resident_bytes", &self.resident_bytes())
            .field("traces", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem_trace::parsec;

    fn spec(cap: u64) -> WorkloadSpec {
        parsec::spec("bodytrack").unwrap().capped(cap)
    }

    #[test]
    fn caches_and_shares_one_buffer() {
        let cache = TraceCache::new(64 << 20);
        let s = spec(4_000);
        let a = cache.try_get(&s, 42).unwrap();
        let b = cache.try_get(&s, 42).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(), TraceCache::cost_bytes(&s));
    }

    #[test]
    fn matches_streaming_generation_exactly() {
        let s = spec(3_000);
        let cached = TraceCache::new(64 << 20).try_get(&s, 7).unwrap();
        let streamed: Vec<PageAccess> = TraceGenerator::new(s.clone(), 7)
            .map(PageAccess::from)
            .collect();
        assert_eq!(&cached[..], &streamed[..]);
    }

    #[test]
    fn different_seeds_are_distinct_entries() {
        let cache = TraceCache::new(64 << 20);
        let s = spec(2_000);
        let a = cache.try_get(&s, 1).unwrap();
        let b = cache.try_get(&s, 2).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(&a[..], &b[..]);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn oversized_trace_is_refused_not_materialized() {
        let cache = TraceCache::new(1024);
        assert!(cache.try_get(&spec(10_000), 42).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn evicts_least_recently_used_under_pressure() {
        let s1 = spec(2_000);
        let s2 = parsec::spec("raytrace").unwrap().capped(2_000);
        let s3 = parsec::spec("canneal").unwrap().capped(2_000);
        let per_trace = TraceCache::cost_bytes(&s1);
        // Budget fits exactly two traces of this size.
        let cache = TraceCache::new(per_trace * 2 + per_trace / 2);
        cache.try_get(&s1, 42).unwrap();
        cache.try_get(&s2, 42).unwrap();
        cache.try_get(&s1, 42).unwrap(); // refresh s1 → s2 is now LRU
        cache.try_get(&s3, 42).unwrap(); // evicts s2
        assert_eq!(cache.len(), 2);
        let s1_again = cache.try_get(&s1, 42).unwrap();
        let s1_expected: Vec<PageAccess> = TraceGenerator::new(s1.clone(), 42)
            .map(PageAccess::from)
            .collect();
        assert_eq!(&s1_again[..], &s1_expected[..], "s1 survived the eviction");
    }

    #[test]
    fn stats_track_hits_misses_evictions_and_oversize() {
        let s1 = spec(2_000);
        let s2 = parsec::spec("raytrace").unwrap().capped(2_000);
        let per_trace = TraceCache::cost_bytes(&s1);
        let cache = TraceCache::new(per_trace + per_trace / 2);
        assert_eq!(cache.stats(), TraceCacheStats::default());

        cache.try_get(&s1, 42).unwrap(); // miss
        cache.try_get(&s1, 42).unwrap(); // hit
        cache.try_get(&s2, 42).unwrap(); // miss + evicts s1
        assert!(cache.try_get(&spec(1_000_000), 42).is_none()); // oversize

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.oversize_rejections, 1);
        assert_eq!(stats.resident_traces, 1);
        assert_eq!(stats.resident_bytes, per_trace as u64);
    }

    #[test]
    fn stats_export_under_trace_cache_names() {
        let cache = TraceCache::new(64 << 20);
        cache.try_get(&spec(1_500), 42).unwrap();
        cache.try_get(&spec(1_500), 42).unwrap();
        let mut registry = MetricsRegistry::new();
        cache.export_into(&mut registry);
        assert_eq!(registry.counter("trace_cache.hits"), 1);
        assert_eq!(registry.counter("trace_cache.misses"), 1);
        assert!((registry.gauge("trace_cache.resident_traces") - 1.0).abs() < f64::EPSILON);
    }

    /// A unique spill directory per test, removed on drop.
    struct SpillDir(PathBuf);

    impl SpillDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("hybridmem-spill-test-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            Self(dir)
        }
    }

    impl Drop for SpillDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn spill_round_trips_across_cache_instances() {
        let dir = SpillDir::new("roundtrip");
        let s = spec(3_000);

        let first = TraceCache::with_spill_dir(64 << 20, &dir.0);
        let generated = first.try_get(&s, 42).unwrap();
        let stats = first.stats();
        assert_eq!(stats.spill_hits, 0);
        assert_eq!(stats.spill_misses, 1);
        assert!(stats.spill_bytes_written > 0, "trace was spilled");

        // A fresh cache (≈ a fresh process) replays the spill file.
        let second = TraceCache::with_spill_dir(64 << 20, &dir.0);
        let replayed = second.try_get(&s, 42).unwrap();
        assert_eq!(&generated[..], &replayed[..]);
        let stats = second.stats();
        assert_eq!(stats.spill_hits, 1);
        assert_eq!(stats.spill_misses, 0);
        assert_eq!(stats.spill_bytes_read, 3_000 * 16);
    }

    #[test]
    fn corrupt_or_mismatched_spill_degrades_to_generation() {
        let dir = SpillDir::new("corrupt");
        let s = spec(2_000);
        let cache = TraceCache::with_spill_dir(64 << 20, &dir.0);
        cache.try_get(&s, 42).unwrap();

        // Truncate the spill file; a fresh cache must fall back cleanly.
        let file = std::fs::read_dir(&dir.0)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "hmtrace"))
            .expect("one spill file");
        let bytes = std::fs::read(&file).unwrap();
        std::fs::write(&file, &bytes[..bytes.len() / 2]).unwrap();

        let fresh = TraceCache::with_spill_dir(64 << 20, &dir.0);
        let replayed = fresh.try_get(&s, 42).unwrap();
        let expected: Vec<PageAccess> = TraceGenerator::new(s.clone(), 42)
            .map(PageAccess::from)
            .collect();
        assert_eq!(&replayed[..], &expected[..]);
        assert_eq!(fresh.stats().spill_misses, 1);

        // A different seed never verifies against the repaired file.
        let other = TraceCache::with_spill_dir(64 << 20, &dir.0);
        other.try_get(&s, 7).unwrap();
        assert_eq!(other.stats().spill_hits, 0);
    }

    #[test]
    fn open_stream_replays_exactly_without_materializing() {
        let dir = SpillDir::new("stream");
        let s = spec(4_000);
        let cache = TraceCache::with_spill_dir(64 << 20, &dir.0);

        // First open generates straight to disk; second replays the file.
        for round in 0..2 {
            let mut stream = cache.open_stream(&s, 42).expect("spill dir configured");
            assert_eq!(stream.remaining(), 4_000);
            let mut streamed = Vec::new();
            while let Some(chunk) = stream.next_chunk().unwrap() {
                streamed.extend(chunk.iter().map(|r| r.access()));
            }
            let expected: Vec<PageAccess> = TraceGenerator::new(s.clone(), 42)
                .map(PageAccess::from)
                .collect();
            assert_eq!(streamed, expected, "round {round}");
        }
        let stats = cache.stats();
        assert_eq!((stats.spill_hits, stats.spill_misses), (1, 1));
        assert!(cache.is_empty(), "streaming never materializes");
    }

    #[test]
    fn spill_disabled_cache_reports_no_stream() {
        let cache = TraceCache::new(64 << 20);
        assert!(cache.open_stream(&spec(1_000), 42).is_none());
        let stats = cache.stats();
        assert_eq!(stats.spill_hits + stats.spill_misses, 0);
    }

    #[test]
    fn concurrent_access_yields_one_shared_buffer() {
        let cache = TraceCache::new(64 << 20);
        let s = spec(5_000);
        let traces: Vec<Arc<[PageAccess]>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| cache.try_get(&s, 42).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for trace in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], trace));
        }
        assert_eq!(cache.len(), 1, "one entry despite 8 concurrent callers");
    }

    #[test]
    fn every_spill_corruption_falls_back_to_generation() {
        let s = spec(2_500);
        let expected: Vec<PageAccess> = TraceGenerator::new(s.clone(), 42)
            .map(PageAccess::from)
            .collect();
        let corruptions: Vec<(&str, Box<dyn Fn(&Path)>)> = vec![
            (
                "truncated",
                Box::new(|path| {
                    let bytes = std::fs::read(path).unwrap();
                    std::fs::write(path, &bytes[..bytes.len() / 3]).unwrap();
                }),
            ),
            (
                "bit-flipped",
                Box::new(|path| {
                    let mut bytes = std::fs::read(path).unwrap();
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0x40;
                    std::fs::write(path, &bytes).unwrap();
                }),
            ),
            (
                "wrong-fingerprint",
                Box::new(|path| {
                    // A valid file for a *different* workload at this
                    // path: the header never verifies, exactly like a
                    // fingerprint collision.
                    let other = parsec::spec("canneal").unwrap().capped(100);
                    let other_json = serde_json::to_string(&other).unwrap();
                    binfmt::write_trace_file(
                        path,
                        &other_json,
                        9,
                        TraceCache::fingerprint(&other, 9),
                        TraceGenerator::new(other, 9).map(PageAccess::from),
                    )
                    .unwrap();
                }),
            ),
            (
                "zero-length",
                Box::new(|path| std::fs::write(path, []).unwrap()),
            ),
        ];
        for (tag, corrupt) in corruptions {
            let dir = SpillDir::new(&format!("fallback-{tag}"));
            let writer = TraceCache::with_spill_dir(64 << 20, &dir.0);
            writer.try_get(&s, 42).unwrap();
            let path = writer.spill_path(TraceCache::fingerprint(&s, 42)).unwrap();
            assert!(path.exists(), "{tag}: spill file was written");
            corrupt(&path);

            let fresh = TraceCache::with_spill_dir(64 << 20, &dir.0);
            let replayed = fresh.try_get(&s, 42).unwrap();
            assert_eq!(&replayed[..], &expected[..], "{tag}: byte-identical");
            let stats = fresh.stats();
            assert_eq!(
                (stats.spill_hits, stats.spill_misses),
                (0, 1),
                "{tag}: counted miss, no hit"
            );
        }
    }

    #[test]
    fn injected_read_faults_degrade_to_counted_misses() {
        let dir = SpillDir::new("fault-read");
        let s = spec(2_000);
        let expected: Vec<PageAccess> = TraceGenerator::new(s.clone(), 42)
            .map(PageAccess::from)
            .collect();
        // Write a clean spill first.
        TraceCache::with_spill_dir(64 << 20, &dir.0)
            .try_get(&s, 42)
            .unwrap();

        // Attempts: 1 = outright read error, 2 = bit-flip (caught by the
        // v2 checksum trailer), 3 = truncation, 4 = clean hit.
        let plan = Arc::new(
            FaultPlan::parse("spill-read-error@1; bit-flip@2:100; truncate@3:48").unwrap(),
        );
        for (round, fault_expected) in [(1, true), (2, true), (3, true), (4, false)] {
            let cache =
                TraceCache::with_spill_dir(64 << 20, &dir.0).with_fault_plan(Arc::clone(&plan));
            let replayed = cache.try_get(&s, 42).unwrap();
            assert_eq!(
                &replayed[..],
                &expected[..],
                "round {round}: byte-identical"
            );
            let stats = cache.stats();
            if fault_expected {
                assert_eq!(
                    (stats.spill_hits, stats.spill_misses),
                    (0, 1),
                    "round {round}: fault degrades to a miss"
                );
            } else {
                assert_eq!(
                    (stats.spill_hits, stats.spill_misses),
                    (1, 0),
                    "round {round}: schedule exhausted, clean hit"
                );
            }
        }
    }

    #[test]
    fn injected_write_faults_are_counted_and_leave_no_file() {
        let dir = SpillDir::new("fault-write");
        let s = spec(1_500);
        let plan = Arc::new(FaultPlan::parse("spill-write-error@1").unwrap());
        let cache = TraceCache::with_spill_dir(64 << 20, &dir.0).with_fault_plan(Arc::clone(&plan));
        let generated = cache.try_get(&s, 42).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.spill_write_errors, 1);
        assert_eq!(stats.spill_bytes_written, 0);
        let path = cache.spill_path(TraceCache::fingerprint(&s, 42)).unwrap();
        assert!(!path.exists(), "failed write leaves no spill file");

        // The second write attempt (fresh cache, same plan) succeeds.
        let retry = TraceCache::with_spill_dir(64 << 20, &dir.0).with_fault_plan(Arc::clone(&plan));
        let replayed = retry.try_get(&s, 42).unwrap();
        assert_eq!(&generated[..], &replayed[..]);
        assert!(path.exists(), "second attempt spills normally");
        assert_eq!(retry.stats().spill_write_errors, 0);
    }

    #[test]
    fn open_stream_applies_injected_read_faults() {
        let dir = SpillDir::new("fault-stream");
        let s = spec(3_000);
        // Write a clean spill via a plain streaming open.
        TraceCache::with_spill_dir(64 << 20, &dir.0)
            .open_stream(&s, 42)
            .expect("spill dir configured");

        // Attempt 1 truncates the image mid-record: the open fails, the
        // cache regenerates the file, and attempt 2 replays it cleanly.
        let plan = Arc::new(FaultPlan::parse("truncate@1:100").unwrap());
        let cache = TraceCache::with_spill_dir(64 << 20, &dir.0).with_fault_plan(Arc::clone(&plan));
        let mut stream = cache.open_stream(&s, 42).expect("regenerated after fault");
        let mut streamed = Vec::new();
        while let Some(chunk) = stream.next_chunk().unwrap() {
            streamed.extend(chunk.iter().map(|r| r.access()));
        }
        let expected: Vec<PageAccess> = TraceGenerator::new(s.clone(), 42)
            .map(PageAccess::from)
            .collect();
        assert_eq!(streamed, expected);
        let stats = cache.stats();
        assert_eq!((stats.spill_hits, stats.spill_misses), (0, 1));
    }

    #[test]
    fn spill_write_errors_export_under_trace_cache_names() {
        let dir = SpillDir::new("fault-export");
        let plan = Arc::new(FaultPlan::parse("spill-write-error@1").unwrap());
        let cache = TraceCache::with_spill_dir(64 << 20, &dir.0).with_fault_plan(plan);
        cache.try_get(&spec(1_000), 42).unwrap();
        let mut registry = MetricsRegistry::new();
        cache.export_into(&mut registry);
        assert_eq!(registry.counter("trace_cache.spill_write_errors"), 1);
    }
}
