//! A process-wide cache of materialized traces, shared across experiment
//! cells.
//!
//! The evaluation matrix runs many `(workload, policy)` cells, and every
//! cell of one workload replays the *same* deterministic trace:
//! [`TraceGenerator`] is a pure function of `(spec, seed)`. Without a
//! cache, `ExperimentConfig::compare` regenerates each workload's trace
//! once per policy (7× for the full matrix) and every ablation sweep
//! regenerates it once per sweep point. [`TraceCache`] materializes each
//! trace once into an `Arc<[PageAccess]>` and hands the same immutable
//! buffer to every cell, including cells running concurrently on the
//! worker pool (see [`compare_policies`](crate::compare_policies)).
//!
//! # Keying
//!
//! Entries are keyed by a stable fingerprint: the FxHash of the spec's
//! canonical JSON serialization plus the generator seed. The full
//! `(spec, seed)` pair is stored alongside each entry and verified on
//! lookup, so a fingerprint collision degrades to a cache miss rather
//! than silently replaying the wrong workload.
//!
//! # Memory bounds
//!
//! The cache holds at most `budget_bytes` of trace data (the byte cost of
//! a trace is known up front: `total_accesses × size_of::<PageAccess>()`).
//! Inserting past the budget evicts least-recently-used entries first. A
//! single trace larger than the whole budget is never materialized —
//! [`TraceCache::try_get`] returns `None` and callers fall back to
//! streaming generation, so full-scale (uncapped) runs cannot exhaust
//! memory through the cache.
//!
//! Trace *generation* happens outside the cache lock: concurrent workers
//! asking for the same workload block on a per-entry [`OnceLock`] (one
//! generates, the rest wait), while workers asking for different
//! workloads generate in parallel.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use hybridmem_metrics::MetricsRegistry;
use hybridmem_trace::{TraceGenerator, WorkloadSpec};
use hybridmem_types::{fx_hash_one, FxHashMap, PageAccess};
use serde::{Deserialize, Serialize};

/// Default byte budget of the global cache: enough for the full default
/// 1M-access × 12-workload suite (~192 MB) with headroom for sweeps.
pub const DEFAULT_BUDGET_BYTES: usize = 1 << 30;

/// One cached trace: generated lazily, at most once, by whichever worker
/// gets there first.
struct TraceSlot {
    spec: WorkloadSpec,
    seed: u64,
    trace: OnceLock<Arc<[PageAccess]>>,
}

impl TraceSlot {
    /// The materialized trace, generating it on first call. Concurrent
    /// callers block until the winning generator finishes.
    fn materialize(&self) -> Arc<[PageAccess]> {
        Arc::clone(self.trace.get_or_init(|| {
            TraceGenerator::new(self.spec.clone(), self.seed)
                .map(PageAccess::from)
                .collect()
        }))
    }
}

struct Entry {
    slot: Arc<TraceSlot>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    entries: FxHashMap<u64, Entry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Point-in-time effectiveness counters of a [`TraceCache`], exposed by
/// [`TraceCache::stats`] and surfaced in `results/throughput.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCacheStats {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that had to generate (or re-generate) the trace.
    pub misses: u64,
    /// Entries evicted by the LRU budget loop.
    pub evictions: u64,
    /// Lookups refused because one trace alone exceeds the budget
    /// (callers fall back to streaming generation).
    pub oversize_rejections: u64,
    /// Traces currently resident.
    pub resident_traces: u64,
    /// Bytes currently accounted against the budget.
    pub resident_bytes: u64,
}

/// A byte-budgeted, LRU-evicting cache of materialized traces.
///
/// # Examples
///
/// ```
/// use hybridmem_core::TraceCache;
/// use hybridmem_trace::parsec;
///
/// let cache = TraceCache::new(64 << 20);
/// let spec = parsec::spec("bodytrack")?.capped(5_000);
/// let first = cache.try_get(&spec, 42).expect("fits the budget");
/// let second = cache.try_get(&spec, 42).expect("cached");
/// assert!(std::sync::Arc::ptr_eq(&first, &second), "same buffer, not a copy");
/// assert_eq!(first.len() as u64, spec.total_accesses());
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
pub struct TraceCache {
    inner: Mutex<Inner>,
    budget_bytes: usize,
    /// Counted outside the mutex — the oversize check rejects before
    /// locking, so this must not require the lock either.
    oversize_rejections: AtomicU64,
}

impl TraceCache {
    /// Creates a cache bounded to `budget_bytes` of trace data.
    #[must_use]
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: FxHashMap::default(),
                bytes: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            budget_bytes,
            oversize_rejections: AtomicU64::new(0),
        }
    }

    /// The process-wide cache used by
    /// [`ExperimentConfig::compare`](crate::ExperimentConfig::compare), the
    /// parallel matrix runner, and the sweep helpers, with
    /// [`DEFAULT_BUDGET_BYTES`] of capacity.
    #[must_use]
    pub fn global() -> &'static Self {
        static GLOBAL: OnceLock<TraceCache> = OnceLock::new();
        GLOBAL.get_or_init(|| Self::new(DEFAULT_BUDGET_BYTES))
    }

    /// Stable fingerprint of a `(spec, seed)` cell.
    fn fingerprint(spec: &WorkloadSpec, seed: u64) -> u64 {
        // JSON is the spec's canonical form (field order is declaration
        // order, stable across runs and platforms); hashing it sidesteps
        // WorkloadSpec's lack of `Hash` (it holds f64 fields).
        let canonical = serde_json::to_string(spec).unwrap_or_default();
        fx_hash_one(&(canonical, seed))
    }

    /// Byte cost of materializing `spec`'s trace, known before generating.
    fn cost_bytes(spec: &WorkloadSpec) -> usize {
        usize::try_from(spec.total_accesses())
            .unwrap_or(usize::MAX)
            .saturating_mul(std::mem::size_of::<PageAccess>())
    }

    /// The materialized trace for `(spec, seed)`, generating and caching
    /// it on first use, or `None` when the trace alone would exceed the
    /// cache budget (callers then stream the generator instead).
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking generator.
    #[must_use]
    pub fn try_get(&self, spec: &WorkloadSpec, seed: u64) -> Option<Arc<[PageAccess]>> {
        let cost = Self::cost_bytes(spec);
        if cost > self.budget_bytes {
            self.oversize_rejections.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let key = Self::fingerprint(spec, seed);
        let slot = {
            let mut guard = self.inner.lock().expect("trace cache poisoned");
            let inner = &mut *guard;
            inner.tick += 1;
            let tick = inner.tick;
            // Fingerprint collisions verify the full key; a mismatch is
            // treated as a miss and replaces the stale entry.
            let hit = match inner.entries.get_mut(&key) {
                Some(entry) if entry.slot.spec == *spec && entry.slot.seed == seed => {
                    entry.last_used = tick;
                    Some(Arc::clone(&entry.slot))
                }
                _ => None,
            };
            match hit {
                Some(slot) => {
                    inner.hits += 1;
                    slot
                }
                None => {
                    inner.misses += 1;
                    if let Some(stale) = inner.entries.remove(&key) {
                        inner.bytes -= stale.bytes;
                    }
                    while inner.bytes + cost > self.budget_bytes {
                        let victim = inner
                            .entries
                            .iter()
                            .min_by_key(|(_, entry)| entry.last_used)
                            .map(|(&k, _)| k)
                            .expect("over budget implies a resident entry");
                        let evicted = inner.entries.remove(&victim).expect("victim resident");
                        inner.bytes -= evicted.bytes;
                        inner.evictions += 1;
                    }
                    let slot = Arc::new(TraceSlot {
                        spec: spec.clone(),
                        seed,
                        trace: OnceLock::new(),
                    });
                    inner.bytes += cost;
                    inner.entries.insert(
                        key,
                        Entry {
                            slot: Arc::clone(&slot),
                            bytes: cost,
                            last_used: tick,
                        },
                    );
                    slot
                }
            }
        };
        // Generate outside the lock: same-trace callers serialize on the
        // slot's OnceLock; different traces generate concurrently.
        Some(slot.materialize())
    }

    /// Number of resident traces (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("trace cache poisoned")
            .entries
            .len()
    }

    /// True when no traces are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of trace data currently accounted against the budget.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().expect("trace cache poisoned").bytes
    }

    /// Snapshot of the cache's effectiveness counters.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn stats(&self) -> TraceCacheStats {
        let inner = self.inner.lock().expect("trace cache poisoned");
        TraceCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            oversize_rejections: self.oversize_rejections.load(Ordering::Relaxed),
            resident_traces: inner.entries.len() as u64,
            resident_bytes: inner.bytes as u64,
        }
    }

    /// Exports the current [`TraceCacheStats`] into `registry` under
    /// `trace_cache.*` names.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    pub fn export_into(&self, registry: &mut MetricsRegistry) {
        let stats = self.stats();
        registry.add("trace_cache.hits", stats.hits);
        registry.add("trace_cache.misses", stats.misses);
        registry.add("trace_cache.evictions", stats.evictions);
        registry.add("trace_cache.oversize_rejections", stats.oversize_rejections);
        #[allow(clippy::cast_precision_loss)]
        {
            registry.set_gauge("trace_cache.resident_traces", stats.resident_traces as f64);
            registry.set_gauge("trace_cache.resident_bytes", stats.resident_bytes as f64);
        }
    }
}

impl std::fmt::Debug for TraceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCache")
            .field("budget_bytes", &self.budget_bytes)
            .field("resident_bytes", &self.resident_bytes())
            .field("traces", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem_trace::parsec;

    fn spec(cap: u64) -> WorkloadSpec {
        parsec::spec("bodytrack").unwrap().capped(cap)
    }

    #[test]
    fn caches_and_shares_one_buffer() {
        let cache = TraceCache::new(64 << 20);
        let s = spec(4_000);
        let a = cache.try_get(&s, 42).unwrap();
        let b = cache.try_get(&s, 42).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(), TraceCache::cost_bytes(&s));
    }

    #[test]
    fn matches_streaming_generation_exactly() {
        let s = spec(3_000);
        let cached = TraceCache::new(64 << 20).try_get(&s, 7).unwrap();
        let streamed: Vec<PageAccess> = TraceGenerator::new(s.clone(), 7)
            .map(PageAccess::from)
            .collect();
        assert_eq!(&cached[..], &streamed[..]);
    }

    #[test]
    fn different_seeds_are_distinct_entries() {
        let cache = TraceCache::new(64 << 20);
        let s = spec(2_000);
        let a = cache.try_get(&s, 1).unwrap();
        let b = cache.try_get(&s, 2).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(&a[..], &b[..]);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn oversized_trace_is_refused_not_materialized() {
        let cache = TraceCache::new(1024);
        assert!(cache.try_get(&spec(10_000), 42).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn evicts_least_recently_used_under_pressure() {
        let s1 = spec(2_000);
        let s2 = parsec::spec("raytrace").unwrap().capped(2_000);
        let s3 = parsec::spec("canneal").unwrap().capped(2_000);
        let per_trace = TraceCache::cost_bytes(&s1);
        // Budget fits exactly two traces of this size.
        let cache = TraceCache::new(per_trace * 2 + per_trace / 2);
        cache.try_get(&s1, 42).unwrap();
        cache.try_get(&s2, 42).unwrap();
        cache.try_get(&s1, 42).unwrap(); // refresh s1 → s2 is now LRU
        cache.try_get(&s3, 42).unwrap(); // evicts s2
        assert_eq!(cache.len(), 2);
        let s1_again = cache.try_get(&s1, 42).unwrap();
        let s1_expected: Vec<PageAccess> = TraceGenerator::new(s1.clone(), 42)
            .map(PageAccess::from)
            .collect();
        assert_eq!(&s1_again[..], &s1_expected[..], "s1 survived the eviction");
    }

    #[test]
    fn stats_track_hits_misses_evictions_and_oversize() {
        let s1 = spec(2_000);
        let s2 = parsec::spec("raytrace").unwrap().capped(2_000);
        let per_trace = TraceCache::cost_bytes(&s1);
        let cache = TraceCache::new(per_trace + per_trace / 2);
        assert_eq!(cache.stats(), TraceCacheStats::default());

        cache.try_get(&s1, 42).unwrap(); // miss
        cache.try_get(&s1, 42).unwrap(); // hit
        cache.try_get(&s2, 42).unwrap(); // miss + evicts s1
        assert!(cache.try_get(&spec(1_000_000), 42).is_none()); // oversize

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.oversize_rejections, 1);
        assert_eq!(stats.resident_traces, 1);
        assert_eq!(stats.resident_bytes, per_trace as u64);
    }

    #[test]
    fn stats_export_under_trace_cache_names() {
        let cache = TraceCache::new(64 << 20);
        cache.try_get(&spec(1_500), 42).unwrap();
        cache.try_get(&spec(1_500), 42).unwrap();
        let mut registry = MetricsRegistry::new();
        cache.export_into(&mut registry);
        assert_eq!(registry.counter("trace_cache.hits"), 1);
        assert_eq!(registry.counter("trace_cache.misses"), 1);
        assert!((registry.gauge("trace_cache.resident_traces") - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn concurrent_access_yields_one_shared_buffer() {
        let cache = TraceCache::new(64 << 20);
        let s = spec(5_000);
        let traces: Vec<Arc<[PageAccess]>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| cache.try_get(&s, 42).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for trace in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], trace));
        }
        assert_eq!(cache.len(), 1, "one entry despite 8 concurrent callers");
    }
}
