//! Integration tests of the windowed observability pipeline and the
//! page-lifecycle ledger: interval records must tile the steady state
//! exactly, sum back to the report's counters, and serialize to
//! byte-identical JSONL at any thread count; promotion records must carry
//! Algorithm 1 provenance matching the policy's configured thresholds.

use hybridmem_core::{
    compare_policies_instrumented, compare_policies_observed, write_jsonl, write_ledger_jsonl,
    DemotionCause, ExperimentConfig, HybridSimulator, Instrumentation, IntervalRecord,
    LedgerOptions, PageEvent, PageLedger, PolicyKind,
};
use hybridmem_policy::CounterKind;
use hybridmem_trace::{parsec, LocalityParams, WorkloadSpec};
use hybridmem_types::{MemoryKind, PageAccess, PageId};

#[test]
fn windows_tile_the_steady_state_and_sum_to_the_report() {
    let spec = parsec::spec("bodytrack").unwrap().capped(10_000);
    let config = ExperimentConfig::default();
    let window = 1_000u64;
    let observed = config
        .run_observed(&spec, PolicyKind::TwoLru, window)
        .unwrap();
    let report = &observed.report;
    let records = &observed.records;
    let requests = report.counts.requests;
    assert!(
        requests > window,
        "the capped run must span several windows"
    );

    // One record per full window plus one for the remainder.
    assert_eq!(records.len() as u64, requests.div_ceil(window));

    // Interval 0 starts exactly where the steady state does, the records
    // are contiguous, and the last one ends at the end of the trace.
    let warmup = spec.total_accesses() - requests;
    assert_eq!(records[0].start_access, warmup);
    for pair in records.windows(2) {
        assert_eq!(pair[0].end_access, pair[1].start_access);
    }
    let last = records.last().unwrap();
    assert_eq!(last.end_access, spec.total_accesses());
    for record in &records[..records.len() - 1] {
        assert_eq!(record.accesses, window);
    }
    let remainder = requests % window;
    let expected_tail = if remainder == 0 { window } else { remainder };
    assert_eq!(last.accesses, expected_tail);

    // Summing any per-window counter reproduces the end-of-run report.
    let sum = |field: fn(&IntervalRecord) -> u64| records.iter().map(field).sum::<u64>();
    assert_eq!(sum(|r| r.accesses), requests);
    assert_eq!(sum(|r| r.faults), report.counts.faults);
    assert_eq!(sum(|r| r.dram_read_hits), report.counts.dram_read_hits);
    assert_eq!(sum(|r| r.dram_write_hits), report.counts.dram_write_hits);
    assert_eq!(sum(|r| r.nvm_read_hits), report.counts.nvm_read_hits);
    assert_eq!(sum(|r| r.nvm_write_hits), report.counts.nvm_write_hits);
    assert_eq!(
        sum(|r| r.migrations_to_dram),
        report.counts.migrations_to_dram
    );
    assert_eq!(
        sum(|r| r.migrations_to_nvm),
        report.counts.migrations_to_nvm
    );
    assert_eq!(sum(|r| r.fills_to_dram), report.counts.fills_to_dram);
    assert_eq!(sum(|r| r.fills_to_nvm), report.counts.fills_to_nvm);
    assert_eq!(
        sum(|r| r.evictions_to_disk),
        report.counts.evictions_to_disk
    );

    // Every window balances: faults are resolved by fills in-window.
    for record in records {
        assert_eq!(
            record.faults,
            record.fills_to_dram + record.fills_to_nvm,
            "interval {}: fills must balance faults",
            record.interval
        );
    }

    // The cumulative metrics snapshot agrees with the records.
    let counter = |name: &str| observed.metrics.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("sim.intervals"), records.len() as u64);
    assert_eq!(counter("sim.accesses"), requests);
    assert_eq!(counter("sim.faults"), report.counts.faults);
}

#[test]
fn window_zero_gives_one_whole_run_record_matching_the_report() {
    let spec = parsec::spec("canneal").unwrap().capped(8_000);
    let config = ExperimentConfig::default();
    let observed = config.run_observed(&spec, PolicyKind::TwoLru, 0).unwrap();
    let report = &observed.report;
    assert_eq!(observed.records.len(), 1);
    let record = &observed.records[0];
    assert_eq!(record.accesses, report.counts.requests);
    assert_eq!(record.faults, report.counts.faults);
    assert!((record.hit_ratio - report.counts.hit_ratio()).abs() < 1e-12);

    // With the whole steady state as one interval, the closed-form Eq. 1
    // evaluated on the measured probabilities must agree with the
    // simulator's accumulated latency per request.
    let amat = report.amat().value();
    assert!(
        (record.amat_ns - amat).abs() <= 1e-6 * amat,
        "interval AMAT {} vs report AMAT {amat}",
        record.amat_ns
    );
    // `appr_nj` is deliberately dynamic-only (Eq. 2), while the report's
    // APPR folds in the Eq. 3 static share — it must be strictly smaller.
    assert!(record.appr_nj < report.appr().value());
}

#[test]
fn interval_jsonl_is_byte_identical_across_thread_counts() {
    let specs = vec![
        parsec::spec("bodytrack").unwrap().capped(4_000),
        parsec::spec("ferret").unwrap().capped(4_000),
    ];
    let kinds = [PolicyKind::TwoLru, PolicyKind::ClockDwf];
    let config = ExperimentConfig::default();

    let serialize = |threads: usize| {
        let (cells, _timing) =
            compare_policies_observed(&specs, &kinds, &config, threads, 500).unwrap();
        let mut bytes = Vec::new();
        for row in &cells {
            for cell in row {
                write_jsonl(&mut bytes, &cell.records).unwrap();
            }
        }
        bytes
    };

    let serial = serialize(1);
    let parallel = serialize(4);
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "interval JSONL must not depend on thread count"
    );
}

/// Drives a synthetic hot page through Algorithm 1 and checks the
/// ledger's promotion provenance against what the policy must have seen:
/// fill into DRAM, demotion by later fault fills, then exactly
/// `read_threshold + 1` NVM read hits firing the promotion.
#[test]
fn ledger_provenance_matches_algorithm_1_on_a_synthetic_hot_page() {
    // 40-page working set => 30 memory pages (75%), 3 in DRAM (10%).
    let spec = WorkloadSpec::new("synthetic", 40, 17, 0, LocalityParams::balanced()).unwrap();
    let config = ExperimentConfig::default();
    let hot = PageId::new(0);

    // Fault-fill pages 0..10 (page 0 lands in DRAM first and is demoted
    // to NVM once DRAM overflows), then hammer page 0 with reads until
    // the read counter crosses the default threshold of 6.
    let mut accesses: Vec<PageAccess> = (0..10).map(|p| PageAccess::read(PageId::new(p))).collect();
    let hammer_reads = u64::from(config.read_threshold) + 1;
    accesses.extend((0..hammer_reads).map(|_| PageAccess::read(hot)));

    let policy = config.build_policy(PolicyKind::TwoLru, &spec).unwrap();
    let mut simulator = HybridSimulator::with_date2016_devices(policy);
    simulator.set_event_sink(Box::new(PageLedger::new(
        "synthetic",
        "two-lru",
        LedgerOptions::default(),
        0,
    )));
    simulator.run_slice(&accesses);
    let mut sink = simulator.take_event_sink().expect("sink installed");
    let report = sink
        .as_any_mut()
        .downcast_mut::<PageLedger>()
        .expect("page ledger")
        .finish();

    let record = report
        .pages
        .iter()
        .find(|record| record.page == hot.value())
        .expect("the hot page must survive top-K retention");
    assert_eq!(record.summary.accesses, 1 + hammer_reads);
    assert_eq!(record.summary.promotions_read, 1);
    assert_eq!(record.summary.promotions_unattributed, 0);
    assert_eq!(record.summary.demotions_fault, 1);
    assert_eq!(record.summary.final_tier, Some(MemoryKind::Dram));
    assert_eq!(
        record.summary.ping_pongs, 0,
        "the demotion preceded the promotion — no round trip yet"
    );

    // Fills go to DRAM (Algorithm 1 lines 27-28), at the page's first
    // access; the demotion is a fault-fill displacement.
    assert_eq!(
        record.events.first(),
        Some(&PageEvent::Fill {
            access: 0,
            into: MemoryKind::Dram
        })
    );
    assert!(record.events.iter().any(|event| matches!(
        event,
        PageEvent::Demote {
            cause: DemotionCause::FaultFill,
            ..
        }
    )));

    // The promotion fired on the last access of the plan — the
    // (threshold + 1)-th NVM read hit — with the counter state Algorithm 1
    // gates on: value just above the configured threshold, at NVM rank 0
    // (every earlier hammer hit moved the page back to the queue's MRU).
    let provenance = record
        .events
        .iter()
        .find_map(|event| match event {
            PageEvent::Promote { access, provenance } => Some((*access, *provenance)),
            _ => None,
        })
        .expect("the hot page was promoted");
    let (access, provenance) = provenance;
    assert_eq!(access, accesses.len() as u64 - 1);
    let provenance = provenance.expect("two-lru promotions carry provenance");
    assert_eq!(provenance.counter, CounterKind::Read);
    assert_eq!(provenance.threshold, config.read_threshold);
    assert_eq!(provenance.value, config.read_threshold + 1);
    assert_eq!(provenance.rank, 0);

    // The all-pages roll-up agrees with the single journey.
    assert_eq!(report.summary.promotions_read, 1);
    assert_eq!(report.summary.promotions_unattributed, 0);
    assert_eq!(report.accesses, accesses.len() as u64);
}

#[test]
fn ledger_jsonl_is_byte_identical_across_thread_counts() {
    let specs = vec![
        parsec::spec("bodytrack").unwrap().capped(4_000),
        parsec::spec("ferret").unwrap().capped(4_000),
    ];
    let kinds = [PolicyKind::TwoLru, PolicyKind::ClockDwf];
    let config = ExperimentConfig::default();
    let instrumentation = Instrumentation::default().with_ledger(LedgerOptions {
        top_k: 16,
        ..LedgerOptions::default()
    });

    let serialize = |threads: usize| {
        let (cells, _timing) =
            compare_policies_instrumented(&specs, &kinds, &config, threads, instrumentation, None)
                .unwrap();
        let mut bytes = Vec::new();
        for row in &cells {
            for cell in row {
                let ledger = cell.ledger.as_ref().expect("ledger requested");
                write_ledger_jsonl(&mut bytes, ledger).unwrap();
            }
        }
        bytes
    };

    let serial = serialize(1);
    let parallel = serialize(4);
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "ledger JSONL must not depend on thread count"
    );

    // Every provenance-tagged promotion in the matrix is internally
    // consistent with Algorithm 1's gate: value strictly above threshold.
    let (cells, _timing) =
        compare_policies_instrumented(&specs, &kinds, &config, 2, instrumentation, None).unwrap();
    let mut tagged = 0u64;
    for cell in cells.iter().flatten() {
        let ledger = cell.ledger.as_ref().expect("ledger requested");
        for record in &ledger.pages {
            for event in &record.events {
                if let PageEvent::Promote {
                    provenance: Some(provenance),
                    ..
                } = event
                {
                    tagged += 1;
                    assert!(
                        provenance.value > provenance.threshold,
                        "promotion fired below its threshold: {provenance:?}"
                    );
                }
            }
        }
    }
    assert!(tagged > 0, "the matrix must contain tagged promotions");
}
