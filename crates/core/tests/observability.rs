//! Integration tests of the windowed observability pipeline: interval
//! records must tile the steady state exactly, sum back to the report's
//! counters, and serialize to byte-identical JSONL at any thread count.

use hybridmem_core::{
    compare_policies_observed, write_jsonl, ExperimentConfig, IntervalRecord, PolicyKind,
};
use hybridmem_trace::parsec;

#[test]
fn windows_tile_the_steady_state_and_sum_to_the_report() {
    let spec = parsec::spec("bodytrack").unwrap().capped(10_000);
    let config = ExperimentConfig::default();
    let window = 1_000u64;
    let observed = config
        .run_observed(&spec, PolicyKind::TwoLru, window)
        .unwrap();
    let report = &observed.report;
    let records = &observed.records;
    let requests = report.counts.requests;
    assert!(
        requests > window,
        "the capped run must span several windows"
    );

    // One record per full window plus one for the remainder.
    assert_eq!(records.len() as u64, requests.div_ceil(window));

    // Interval 0 starts exactly where the steady state does, the records
    // are contiguous, and the last one ends at the end of the trace.
    let warmup = spec.total_accesses() - requests;
    assert_eq!(records[0].start_access, warmup);
    for pair in records.windows(2) {
        assert_eq!(pair[0].end_access, pair[1].start_access);
    }
    let last = records.last().unwrap();
    assert_eq!(last.end_access, spec.total_accesses());
    for record in &records[..records.len() - 1] {
        assert_eq!(record.accesses, window);
    }
    let remainder = requests % window;
    let expected_tail = if remainder == 0 { window } else { remainder };
    assert_eq!(last.accesses, expected_tail);

    // Summing any per-window counter reproduces the end-of-run report.
    let sum = |field: fn(&IntervalRecord) -> u64| records.iter().map(field).sum::<u64>();
    assert_eq!(sum(|r| r.accesses), requests);
    assert_eq!(sum(|r| r.faults), report.counts.faults);
    assert_eq!(sum(|r| r.dram_read_hits), report.counts.dram_read_hits);
    assert_eq!(sum(|r| r.dram_write_hits), report.counts.dram_write_hits);
    assert_eq!(sum(|r| r.nvm_read_hits), report.counts.nvm_read_hits);
    assert_eq!(sum(|r| r.nvm_write_hits), report.counts.nvm_write_hits);
    assert_eq!(
        sum(|r| r.migrations_to_dram),
        report.counts.migrations_to_dram
    );
    assert_eq!(
        sum(|r| r.migrations_to_nvm),
        report.counts.migrations_to_nvm
    );
    assert_eq!(sum(|r| r.fills_to_dram), report.counts.fills_to_dram);
    assert_eq!(sum(|r| r.fills_to_nvm), report.counts.fills_to_nvm);
    assert_eq!(
        sum(|r| r.evictions_to_disk),
        report.counts.evictions_to_disk
    );

    // Every window balances: faults are resolved by fills in-window.
    for record in records {
        assert_eq!(
            record.faults,
            record.fills_to_dram + record.fills_to_nvm,
            "interval {}: fills must balance faults",
            record.interval
        );
    }

    // The cumulative metrics snapshot agrees with the records.
    let counter = |name: &str| observed.metrics.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("sim.intervals"), records.len() as u64);
    assert_eq!(counter("sim.accesses"), requests);
    assert_eq!(counter("sim.faults"), report.counts.faults);
}

#[test]
fn window_zero_gives_one_whole_run_record_matching_the_report() {
    let spec = parsec::spec("canneal").unwrap().capped(8_000);
    let config = ExperimentConfig::default();
    let observed = config.run_observed(&spec, PolicyKind::TwoLru, 0).unwrap();
    let report = &observed.report;
    assert_eq!(observed.records.len(), 1);
    let record = &observed.records[0];
    assert_eq!(record.accesses, report.counts.requests);
    assert_eq!(record.faults, report.counts.faults);
    assert!((record.hit_ratio - report.counts.hit_ratio()).abs() < 1e-12);

    // With the whole steady state as one interval, the closed-form Eq. 1
    // evaluated on the measured probabilities must agree with the
    // simulator's accumulated latency per request.
    let amat = report.amat().value();
    assert!(
        (record.amat_ns - amat).abs() <= 1e-6 * amat,
        "interval AMAT {} vs report AMAT {amat}",
        record.amat_ns
    );
    // `appr_nj` is deliberately dynamic-only (Eq. 2), while the report's
    // APPR folds in the Eq. 3 static share — it must be strictly smaller.
    assert!(record.appr_nj < report.appr().value());
}

#[test]
fn interval_jsonl_is_byte_identical_across_thread_counts() {
    let specs = vec![
        parsec::spec("bodytrack").unwrap().capped(4_000),
        parsec::spec("ferret").unwrap().capped(4_000),
    ];
    let kinds = [PolicyKind::TwoLru, PolicyKind::ClockDwf];
    let config = ExperimentConfig::default();

    let serialize = |threads: usize| {
        let (cells, _timing) =
            compare_policies_observed(&specs, &kinds, &config, threads, 500).unwrap();
        let mut bytes = Vec::new();
        for row in &cells {
            for cell in row {
                write_jsonl(&mut bytes, &cell.records).unwrap();
            }
        }
        bytes
    };

    let serial = serialize(1);
    let parallel = serialize(4);
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "interval JSONL must not depend on thread count"
    );
}
