//! Integration tests of the event-observation hook: the emitted stream
//! must agree exactly with the report's counters.

use hybridmem_core::{
    CountingSink, ExperimentConfig, HybridSimulator, PolicyKind, RecordingSink, SimEvent,
};
use hybridmem_trace::{parsec, TraceGenerator};
use hybridmem_types::{MemoryKind, PageAccess};

#[test]
fn event_stream_matches_report_counters() {
    let spec = parsec::spec("bodytrack").unwrap().capped(10_000);
    let config = ExperimentConfig::default();
    let policy = config.build_policy(PolicyKind::TwoLru, &spec).unwrap();
    let mut sim = HybridSimulator::with_date2016_devices(policy);
    sim.set_event_sink(Box::new(RecordingSink::new()));
    sim.run(TraceGenerator::new(spec.clone(), config.seed).map(PageAccess::from));

    let sink = sim.take_event_sink().expect("sink installed");
    let events = sink
        .as_any()
        .downcast_ref::<RecordingSink>()
        .expect("recording sink")
        .events()
        .to_vec();
    let report = sim.into_report("bodytrack");

    let served = events
        .iter()
        .filter(|e| matches!(e, SimEvent::Served { .. }))
        .count() as u64;
    let faults = events
        .iter()
        .filter(|e| matches!(e, SimEvent::Fault { .. }))
        .count() as u64;
    assert_eq!(served, report.counts.hits());
    assert_eq!(faults, report.counts.faults);
    assert_eq!(served + faults, report.counts.requests);

    // Action events agree with the action counters.
    let migrations = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                SimEvent::Action {
                    action: hybridmem_policy::PolicyAction::Migrate { .. }
                }
            )
        })
        .count() as u64;
    assert_eq!(migrations, report.counts.migrations());

    // Served events name the module that the per-module stats credit.
    let nvm_served = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                SimEvent::Served {
                    from: MemoryKind::Nvm,
                    ..
                }
            )
        })
        .count() as u64;
    assert_eq!(
        nvm_served,
        report.counts.nvm_read_hits + report.counts.nvm_write_hits
    );
}

#[test]
fn counting_sink_is_cheap_and_consistent() {
    let spec = parsec::spec("ferret").unwrap().capped(20_000);
    let config = ExperimentConfig::default();
    let policy = config.build_policy(PolicyKind::ClockDwf, &spec).unwrap();
    let mut sim = HybridSimulator::with_date2016_devices(policy);
    sim.set_event_sink(Box::new(CountingSink::new()));
    sim.run(TraceGenerator::new(spec, config.seed).map(PageAccess::from));

    let sink = sim.take_event_sink().expect("sink installed");
    let counts = *sink
        .as_any()
        .downcast_ref::<CountingSink>()
        .expect("counting sink");
    let report = sim.into_report("ferret");
    assert_eq!(counts.served, report.counts.hits());
    assert_eq!(counts.faults, report.counts.faults);
    assert!(counts.actions >= report.counts.migrations());
}

#[test]
fn sink_survives_accounting_reset() {
    // Warmup resets accounting but the sink keeps observing — the stream is
    // the raw history, the report is the steady state.
    let spec = parsec::spec("x264").unwrap().capped(8_000);
    let config = ExperimentConfig::default();
    let policy = config.build_policy(PolicyKind::TwoLru, &spec).unwrap();
    let mut sim = HybridSimulator::with_date2016_devices(policy);
    sim.set_event_sink(Box::new(CountingSink::new()));

    let mut trace = TraceGenerator::new(spec.clone(), config.seed).map(PageAccess::from);
    for access in trace.by_ref().take(2_000) {
        sim.step(access);
    }
    sim.reset_accounting();
    sim.run(trace);

    let sink = sim.take_event_sink().expect("sink installed");
    let counts = *sink
        .as_any()
        .downcast_ref::<CountingSink>()
        .expect("counting sink");
    let report = sim.into_report("x264");
    assert_eq!(
        counts.served + counts.faults,
        spec.total_accesses(),
        "sink saw the whole run"
    );
    assert_eq!(
        report.counts.requests,
        spec.total_accesses() - 2_000,
        "report covers only the post-reset steady state"
    );
}
