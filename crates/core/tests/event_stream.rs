//! Integration tests of the event-observation hook: the emitted stream
//! must agree exactly with the report's counters.

use hybridmem_core::{
    CountingSink, ExperimentConfig, HybridSimulator, PolicyKind, RecordingSink, SimEvent,
};
use hybridmem_policy::PolicyAction;
use hybridmem_trace::{parsec, TraceGenerator};
use hybridmem_types::{MemoryKind, PageAccess};

/// Runs one policy over a capped workload with a recording sink and
/// returns the recorded event stream.
fn record_events(workload: &str, cap: u64, kind: PolicyKind) -> Vec<SimEvent> {
    let spec = parsec::spec(workload).unwrap().capped(cap);
    let config = ExperimentConfig::default();
    let policy = config.build_policy(kind, &spec).unwrap();
    let mut sim = HybridSimulator::with_date2016_devices(policy);
    sim.set_event_sink(Box::new(RecordingSink::new()));
    sim.run(TraceGenerator::new(spec, config.seed).map(PageAccess::from));
    sim.take_event_sink()
        .expect("sink installed")
        .as_any()
        .downcast_ref::<RecordingSink>()
        .expect("recording sink")
        .events()
        .to_vec()
}

#[test]
fn event_stream_matches_report_counters() {
    let spec = parsec::spec("bodytrack").unwrap().capped(10_000);
    let config = ExperimentConfig::default();
    let policy = config.build_policy(PolicyKind::TwoLru, &spec).unwrap();
    let mut sim = HybridSimulator::with_date2016_devices(policy);
    sim.set_event_sink(Box::new(RecordingSink::new()));
    sim.run(TraceGenerator::new(spec.clone(), config.seed).map(PageAccess::from));

    let sink = sim.take_event_sink().expect("sink installed");
    let events = sink
        .as_any()
        .downcast_ref::<RecordingSink>()
        .expect("recording sink")
        .events()
        .to_vec();
    let report = sim.into_report("bodytrack");

    let served = events
        .iter()
        .filter(|e| matches!(e, SimEvent::Served { .. }))
        .count() as u64;
    let faults = events
        .iter()
        .filter(|e| matches!(e, SimEvent::Fault { .. }))
        .count() as u64;
    assert_eq!(served, report.counts.hits());
    assert_eq!(faults, report.counts.faults);
    assert_eq!(served + faults, report.counts.requests);

    // Action events agree with the action counters.
    let migrations = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                SimEvent::Action {
                    action: hybridmem_policy::PolicyAction::Migrate { .. }
                }
            )
        })
        .count() as u64;
    assert_eq!(migrations, report.counts.migrations());

    // Served events name the module that the per-module stats credit.
    let nvm_served = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                SimEvent::Served {
                    from: MemoryKind::Nvm,
                    ..
                }
            )
        })
        .count() as u64;
    assert_eq!(
        nvm_served,
        report.counts.nvm_read_hits + report.counts.nvm_write_hits
    );
}

#[test]
fn every_fault_group_ends_with_its_own_fill() {
    // SimEvent ordering contract: a Fault is emitted before the actions
    // that resolve it, and the group of actions between the Fault and the
    // next demand event contains exactly one FillFromDisk — for the
    // faulting page, as the group's last action (evictions and demotions
    // must free the slot before the fill lands in it).
    for kind in [PolicyKind::TwoLru, PolicyKind::ClockDwf] {
        let events = record_events("bodytrack", 5_000, kind);
        let mut faults = 0u64;
        let mut index = 0;
        while index < events.len() {
            let SimEvent::Fault { access } = events[index] else {
                index += 1;
                continue;
            };
            faults += 1;
            let group: Vec<PolicyAction> = events[index + 1..]
                .iter()
                .map_while(|event| match event {
                    SimEvent::Action { action } => Some(*action),
                    _ => None,
                })
                .collect();
            let fills: Vec<&PolicyAction> = group
                .iter()
                .filter(|a| matches!(a, PolicyAction::FillFromDisk { .. }))
                .collect();
            assert_eq!(fills.len(), 1, "{kind}: one fill per fault");
            assert!(
                matches!(
                    group.last(),
                    Some(PolicyAction::FillFromDisk { page, .. }) if *page == access.page
                ),
                "{kind}: the fill is the group's last action and names the faulting page"
            );
            index += 1 + group.len();
        }
        assert!(faults > 0, "{kind}: the capped run must fault");
    }
}

#[test]
fn served_events_carry_the_servicing_tier() {
    // Under a single-tier policy every hit must be served from that tier —
    // a Served event naming the other module would be a simulator bug.
    for (kind, tier) in [
        (PolicyKind::DramOnly, MemoryKind::Dram),
        (PolicyKind::NvmOnly, MemoryKind::Nvm),
    ] {
        let events = record_events("raytrace", 4_000, kind);
        let mut served = 0u64;
        for event in &events {
            if let SimEvent::Served { from, .. } = event {
                assert_eq!(*from, tier, "{kind}");
                served += 1;
            }
        }
        assert!(served > 0, "{kind}: the capped run must hit");
    }
}

#[test]
fn bounded_recording_sink_keeps_the_newest_events() {
    let spec = parsec::spec("bodytrack").unwrap().capped(5_000);
    let config = ExperimentConfig::default();

    let run = |sink: RecordingSink| {
        let policy = config.build_policy(PolicyKind::TwoLru, &spec).unwrap();
        let mut sim = HybridSimulator::with_date2016_devices(policy);
        sim.set_event_sink(Box::new(sink));
        sim.run(TraceGenerator::new(spec.clone(), config.seed).map(PageAccess::from));
        let mut sink = sim.take_event_sink().expect("sink installed");
        sink.as_any_mut()
            .downcast_mut::<RecordingSink>()
            .expect("recording sink")
            .take_events()
    };

    let full = run(RecordingSink::new());
    let capacity = 256;
    let bounded = run(RecordingSink::bounded(capacity));
    assert_eq!(bounded.len(), capacity);
    assert_eq!(
        bounded.as_slice(),
        &full[full.len() - capacity..],
        "the ring holds exactly the newest events, in order"
    );
}

#[test]
fn counting_sink_is_cheap_and_consistent() {
    let spec = parsec::spec("ferret").unwrap().capped(20_000);
    let config = ExperimentConfig::default();
    let policy = config.build_policy(PolicyKind::ClockDwf, &spec).unwrap();
    let mut sim = HybridSimulator::with_date2016_devices(policy);
    sim.set_event_sink(Box::new(CountingSink::new()));
    sim.run(TraceGenerator::new(spec, config.seed).map(PageAccess::from));

    let sink = sim.take_event_sink().expect("sink installed");
    let counts = *sink
        .as_any()
        .downcast_ref::<CountingSink>()
        .expect("counting sink");
    let report = sim.into_report("ferret");
    assert_eq!(counts.served, report.counts.hits());
    assert_eq!(counts.faults, report.counts.faults);
    assert!(counts.actions >= report.counts.migrations());
}

#[test]
fn sink_survives_accounting_reset() {
    // Warmup resets accounting but the sink keeps observing — the stream is
    // the raw history, the report is the steady state.
    let spec = parsec::spec("x264").unwrap().capped(8_000);
    let config = ExperimentConfig::default();
    let policy = config.build_policy(PolicyKind::TwoLru, &spec).unwrap();
    let mut sim = HybridSimulator::with_date2016_devices(policy);
    sim.set_event_sink(Box::new(CountingSink::new()));

    let mut trace = TraceGenerator::new(spec.clone(), config.seed).map(PageAccess::from);
    for access in trace.by_ref().take(2_000) {
        sim.step(access);
    }
    sim.reset_accounting();
    sim.run(trace);

    let sink = sim.take_event_sink().expect("sink installed");
    let counts = *sink
        .as_any()
        .downcast_ref::<CountingSink>()
        .expect("counting sink");
    let report = sim.into_report("x264");
    assert_eq!(
        counts.served + counts.faults,
        spec.total_accesses(),
        "sink saw the whole run"
    );
    assert_eq!(
        report.counts.requests,
        spec.total_accesses() - 2_000,
        "report covers only the post-reset steady state"
    );
}
